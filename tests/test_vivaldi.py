"""The Vivaldi coordinate baseline (repro.baselines.vivaldi)."""

import numpy as np
import pytest

from repro.baselines import build_vivaldi
from repro.errors import ConfigError
from repro.graphs import apsp, path_graph


class TestEmbedding:
    def test_shapes(self, er_weighted):
        vc = build_vivaldi(er_weighted, dim=4, rounds=20, seed=1)
        assert vc.coords.shape == (er_weighted.n, 4)
        assert vc.size_words() == 4

    def test_estimates_symmetric_and_nonnegative(self, er_weighted):
        vc = build_vivaldi(er_weighted, rounds=20, seed=2)
        assert vc.estimate(0, 5) == vc.estimate(5, 0)
        assert vc.estimate(0, 5) >= 0.0
        assert vc.estimate(3, 3) == 0.0

    def test_reproducible(self, er_weighted):
        a = build_vivaldi(er_weighted, rounds=10, seed=3)
        b = build_vivaldi(er_weighted, rounds=10, seed=3)
        assert np.array_equal(a.coords, b.coords)

    def test_relaxation_improves_fit(self, geo_graph):
        d = apsp(geo_graph)

        def err(vc):
            tot = 0.0
            for u in range(0, geo_graph.n, 3):
                for v in range(u + 1, geo_graph.n, 3):
                    tot += abs(vc.estimate(u, v) - d[u, v]) / d[u, v]
            return tot

        rough = build_vivaldi(geo_graph, rounds=1, seed=4, dist_matrix=d)
        relaxed = build_vivaldi(geo_graph, rounds=150, seed=4, dist_matrix=d)
        assert err(relaxed) < err(rough)

    def test_good_fit_on_geometric(self, geo_graph):
        d = apsp(geo_graph)
        vc = build_vivaldi(geo_graph, dim=3, seed=5, dist_matrix=d)
        ratios = [vc.estimate(u, v) / d[u, v]
                  for u in range(0, geo_graph.n, 2)
                  for v in range(u + 1, geo_graph.n, 2)]
        assert 0.8 <= float(np.mean(ratios)) <= 1.25

    def test_line_embeds_well(self):
        g = path_graph(12)
        d = apsp(g)
        vc = build_vivaldi(g, dim=2, rounds=300, seed=6, dist_matrix=d,
                           samples_per_node=11)
        # a path is exactly embeddable: endpoints must end up far apart
        assert vc.estimate(0, 11) >= 0.5 * d[0, 11]


class TestNoGuarantees:
    def test_underestimates_happen(self, er_weighted):
        # the structural difference from sketches: coordinates DO
        # underestimate (this is the paper's point, not a bug)
        d = apsp(er_weighted)
        vc = build_vivaldi(er_weighted, dim=3, seed=7, dist_matrix=d)
        unders = sum(1 for u in range(er_weighted.n)
                     for v in range(u + 1, er_weighted.n)
                     if vc.estimate(u, v) < d[u, v] * 0.999)
        assert unders > 0


class TestValidation:
    def test_bad_dim(self, er_weighted):
        with pytest.raises(ConfigError):
            build_vivaldi(er_weighted, dim=0)

    def test_bad_rounds(self, er_weighted):
        with pytest.raises(ConfigError):
            build_vivaldi(er_weighted, rounds=0)
