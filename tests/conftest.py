"""Shared fixtures for the test suite.

Graph fixtures are deliberately small (n <= ~60) so that the full
round-faithful CONGEST simulations — the expensive part of the suite —
keep the whole run in the low minutes.  Large-n behaviour is exercised by
the benchmark harness, not the tests.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

# The nightly CI job runs the property suites exhaustively:
#   REPRO_HYPOTHESIS_PROFILE=nightly pytest --runslow -m slow
hypothesis_settings.register_profile("nightly", max_examples=300,
                                     deadline=None)
if os.environ.get("REPRO_HYPOTHESIS_PROFILE"):
    hypothesis_settings.load_profile(os.environ["REPRO_HYPOTHESIS_PROFILE"])

from repro.graphs import (
    Graph,
    erdos_renyi,
    grid2d,
    ring,
    random_geometric,
    assign_uniform_weights,
    assign_exponential_weights,
    apsp,
    shortest_path_diameter,
)


@pytest.fixture(scope="session")
def triangle() -> Graph:
    """3-cycle with distinct weights — tiny hand-checkable instance."""
    return Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture(scope="session")
def weighted_diamond() -> Graph:
    """4 nodes where the direct edge is NOT the shortest path."""
    return Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 1.0),
                     (0, 3, 10.0)])


@pytest.fixture(scope="session")
def er_unit() -> Graph:
    """Unit-weight Erdős–Rényi, n=40."""
    return erdos_renyi(40, seed=101)


@pytest.fixture(scope="session")
def er_weighted() -> Graph:
    """Uniformly weighted Erdős–Rényi, n=36."""
    return assign_uniform_weights(erdos_renyi(36, seed=202), seed=203)


@pytest.fixture(scope="session")
def er_heavy() -> Graph:
    """Heavy-tailed weights — S well above D."""
    return assign_exponential_weights(erdos_renyi(30, seed=304), seed=305)


@pytest.fixture(scope="session")
def small_grid() -> Graph:
    return grid2d(5, 6)


@pytest.fixture(scope="session")
def small_ring() -> Graph:
    return ring(15)


@pytest.fixture(scope="session")
def geo_graph() -> Graph:
    return random_geometric(40, seed=406)


@pytest.fixture(scope="session")
def er_weighted_apsp(er_weighted) -> np.ndarray:
    return apsp(er_weighted)


@pytest.fixture(scope="session")
def er_unit_apsp(er_unit) -> np.ndarray:
    return apsp(er_unit)


@pytest.fixture(scope="session")
def er_weighted_S(er_weighted) -> int:
    return shortest_path_diameter(er_weighted)


@pytest.fixture
def timing_gate():
    """Gate for wall-clock assertions that need real parallel hardware.

    Timing-sensitive assertions (speedup ratios, overlap windows) are
    meaningless on CI runners and single-CPU boxes, where scheduling
    noise dwarfs the effect under test.  Tests call ``timing_gate(why)``
    before such an assertion; the call self-skips — with the reason —
    unless the host can support the measurement.  Setting
    ``REPRO_FORCE_TIMING=1`` arms the gate everywhere (for debugging a
    runner that *should* pass).
    """

    def gate(why: str) -> None:
        if os.environ.get("REPRO_FORCE_TIMING"):
            return
        if os.environ.get("CI"):
            pytest.skip(f"{why}: timing assertion self-skips on CI "
                        "(set REPRO_FORCE_TIMING=1 to arm)")
        if (os.cpu_count() or 1) < 2:
            pytest.skip(f"{why}: timing assertion needs >= 2 CPUs "
                        "(set REPRO_FORCE_TIMING=1 to arm)")

    return gate


def pytest_addoption(parser):
    parser.addoption("--runslow", action="store_true", default=False,
                     help="run slow end-to-end protocol tests")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long end-to-end protocol runs")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
