"""The CONGEST simulator (repro.congest)."""


import pytest

from repro.congest import Message, NodeProgram, Simulator
from repro.congest.metrics import RunMetrics
from repro.congest.tracing import Tracer
from repro.errors import ProtocolError, SimulationError
from repro.graphs import Graph, path_graph, ring


class Flooder(NodeProgram):
    """Floods a token once; used to exercise delivery and metering."""

    def __init__(self, node: int, origin: int):
        self.node = node
        self.origin = origin
        self.seen = node == origin

    def on_start(self, ctx):
        if self.node == self.origin:
            ctx.broadcast(("tok",))

    def on_round(self, ctx, inbox):
        if inbox and not self.seen:
            self.seen = True
            ctx.broadcast(("tok",))

    def result(self):
        return self.seen


class DoubleSender(NodeProgram):
    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.send(1, ("a",))
            ctx.send(1, ("b",))


class FatSender(NodeProgram):
    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.send(1, tuple(range(100)))


class NonNeighborSender(NodeProgram):
    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.send(2, ("x",))


class Chatterbox(NodeProgram):
    """Never stops talking — for max_rounds enforcement."""

    def on_start(self, ctx):
        ctx.broadcast(("x",))

    def on_round(self, ctx, inbox):
        ctx.broadcast(("x",))


class TestDelivery:
    def test_flood_reaches_everyone(self):
        g = ring(9)
        res = Simulator(g, lambda u: Flooder(u, 0)).run()
        assert all(res.results())

    def test_flood_rounds_equal_eccentricity(self):
        g = path_graph(7)
        res = Simulator(g, lambda u: Flooder(u, 0)).run()
        # token reaches node 6 at round 6; its own rebroadcast is absorbed
        # by node 5 in round 7, after which the network is silent
        assert res.metrics.rounds == 7

    def test_messages_arrive_next_round(self):
        g = path_graph(2)

        class Recorder(NodeProgram):
            def __init__(self, node):
                self.node = node
                self.arrival = None

            def on_start(self, ctx):
                if self.node == 0:
                    ctx.send(1, ("m",))

            def on_round(self, ctx, inbox):
                if inbox and self.arrival is None:
                    self.arrival = ctx.round

            def result(self):
                return self.arrival

        res = Simulator(g, Recorder).run()
        assert res.programs[1].result() == 1

    def test_quiescent_immediately_when_nothing_sent(self):
        res = Simulator(path_graph(3), lambda u: NodeProgram()).run()
        assert res.metrics.rounds == 0
        assert res.metrics.messages == 0


class TestModelEnforcement:
    def test_two_messages_one_edge_rejected(self):
        with pytest.raises(ProtocolError, match="one-message-per-edge"):
            Simulator(path_graph(2), lambda u: DoubleSender()).run()

    def test_bandwidth_enforced(self):
        with pytest.raises(ProtocolError, match="bandwidth"):
            Simulator(path_graph(2), lambda u: FatSender()).run()

    def test_bandwidth_configurable(self):
        res = Simulator(path_graph(2), lambda u: FatSender(),
                        bandwidth_words=100).run()
        assert res.metrics.messages == 1
        assert res.metrics.words == 100

    def test_non_neighbor_send_rejected(self):
        with pytest.raises(ProtocolError, match="not a neighbor"):
            Simulator(path_graph(3), lambda u: NonNeighborSender()).run()

    def test_send_outside_callback_rejected(self):
        g = path_graph(2)
        sim = Simulator(g, lambda u: NodeProgram())
        with pytest.raises(ProtocolError, match="outside"):
            sim.contexts[0].send(1, ("x",))

    def test_max_rounds_raises(self):
        with pytest.raises(SimulationError, match="did not quiesce"):
            Simulator(ring(4), lambda u: Chatterbox()).run(max_rounds=10)


class TestMetrics:
    def test_message_and_word_counts(self):
        g = path_graph(3)
        res = Simulator(g, lambda u: Flooder(u, 0)).run()
        # round 1: 0->1; round 2: 1->{0,2}; round 3: 2->1 (absorbed)
        assert res.metrics.messages == 4
        assert res.metrics.words == 4  # ("tok",) is 1 word

    def test_phase_accounting(self):
        m = RunMetrics()
        m.begin_phase("a")
        m.record_round(2, 6)
        m.begin_phase("b")
        m.record_round(1, 3)
        assert m.phase("a").messages == 2
        assert m.phase("b").rounds == 1
        assert m.rounds == 2 and m.words == 9
        with pytest.raises(KeyError):
            m.phase("zzz")

    def test_metrics_addition(self):
        a, b = RunMetrics(), RunMetrics()
        a.begin_phase("x")
        a.record_round(3, 9)
        b.record_round(5, 15)
        c = a + b
        assert c.rounds == 2 and c.messages == 8 and c.words == 24
        assert c.max_inflight == 5
        assert c.phase_names() == ["x"]

    def test_max_inflight(self):
        g = ring(6)
        res = Simulator(g, lambda u: Flooder(u, 0)).run()
        assert res.metrics.max_inflight >= 2


class TestContext:
    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0, 1.0), (2, 3, 1.0), (2, 1, 1.0)])
        sim = Simulator(g, lambda u: NodeProgram())
        assert sim.contexts[2].neighbors == (0, 1, 3)

    def test_edge_weight(self):
        g = Graph(2, [(0, 1, 3.5)])
        sim = Simulator(g, lambda u: NodeProgram())
        assert sim.contexts[0].edge_weight(1) == 3.5
        with pytest.raises(ProtocolError):
            sim.contexts[0].edge_weight(0)

    def test_per_node_rngs_differ(self):
        g = path_graph(3)
        sim = Simulator(g, lambda u: NodeProgram(), seed=1)
        draws = [sim.contexts[u].rng.random() for u in range(3)]
        assert len(set(draws)) == 3

    def test_node_rngs_reproducible(self):
        g = path_graph(3)
        a = Simulator(g, lambda u: NodeProgram(), seed=1)
        b = Simulator(g, lambda u: NodeProgram(), seed=1)
        assert a.contexts[1].rng.random() == b.contexts[1].rng.random()


class TestTracing:
    def test_tracer_records_deliveries(self):
        g = path_graph(3)
        tr = Tracer()
        Simulator(g, lambda u: Flooder(u, 0), tracer=tr).run()
        assert len(tr) == 4
        assert all(ev.kind() == "tok" for ev in tr.events)

    def test_tracer_predicate_filters(self):
        g = path_graph(3)
        tr = Tracer(predicate=lambda ev: ev.dst == 2)
        Simulator(g, lambda u: Flooder(u, 0), tracer=tr).run()
        assert len(tr) == 1
        assert next(tr.between(1, 2)).round == 2


class TestMessage:
    def test_words(self):
        assert Message(0, 1, ("bf", 3, 1.0)).words() == 3

    def test_kind(self):
        assert Message(0, 1, ("bf", 3, 1.0)).kind() == "bf"
        assert Message(0, 1, 42).kind() is None


class TestRunProtocol:
    """The one-shot convenience wrapper around Simulator."""

    def test_runs_to_quiescence(self):
        from repro.congest.network import run_protocol

        res = run_protocol(path_graph(4), lambda u: Flooder(u, 0), seed=1)
        assert all(res.results())

    def test_forwards_metrics_kwarg(self):
        # regression: metrics= used to fall through **kwargs into
        # Simulator.run() and crash with an unexpected-keyword TypeError
        from repro.congest.network import run_protocol

        m = RunMetrics()
        res = run_protocol(path_graph(4), lambda u: Flooder(u, 0), seed=1,
                           metrics=m)
        assert res.metrics is m
        assert m.rounds >= 1 and m.messages >= 1

    def test_forwards_bandwidth_and_tracer(self):
        from repro.congest.network import run_protocol

        tr = Tracer()
        res = run_protocol(path_graph(3), lambda u: Flooder(u, 0), seed=1,
                           bandwidth_words=2, tracer=tr)
        assert len(tr) > 0  # the tracer actually reached the simulator
        assert res.metrics.rounds >= 1
