"""Theory curves, ratio summaries, and table rendering (repro.analysis)."""

import math

import pytest

from repro.analysis import (
    bound_ratio,
    cdg_round_bound,
    cdg_size_bound,
    format_row,
    graceful_round_bound,
    graceful_size_bound,
    render_table,
    stretch3_round_bound,
    stretch3_size_bound,
    summarize_ratios,
    tz_message_bound,
    tz_round_bound,
    tz_size_bound,
)


class TestCurves:
    def test_tz_round_bound_formula(self):
        assert tz_round_bound(64, 2, 5) == pytest.approx(
            2 * 8 * 5 * math.log(64))

    def test_tz_message_bound_scales_with_edges(self):
        assert tz_message_bound(64, 2, 5, m=100) == pytest.approx(
            100 * tz_round_bound(64, 2, 5))

    def test_tz_size_bound_variants(self):
        assert tz_size_bound(64, 2, whp=False) == pytest.approx(16)
        assert tz_size_bound(64, 2, whp=True) == pytest.approx(
            16 * math.log(64))

    def test_size_bound_minimized_near_k_log_n(self):
        n = 2 ** 16
        sizes = {k: tz_size_bound(n, k, whp=False) for k in (1, 2, 4, 8, 16)}
        assert sizes[16] < sizes[4] < sizes[1]

    def test_stretch3_bounds(self):
        assert stretch3_size_bound(64, 0.5) == pytest.approx(2 * math.log(64))
        assert stretch3_round_bound(64, 0.5, 3) == pytest.approx(
            3 * 2 * math.log(64))

    def test_cdg_bounds_shrink_with_k(self):
        assert cdg_size_bound(256, 0.1, 3) < cdg_size_bound(256, 0.1, 1)

    def test_cdg_round_bound_positive(self):
        assert cdg_round_bound(256, 0.1, 2, 7) > 0

    def test_graceful_bounds(self):
        assert graceful_size_bound(64) == pytest.approx(math.log(64) ** 4)
        assert graceful_round_bound(64, 5) == pytest.approx(
            5 * math.log(64) ** 4)


class TestRatios:
    def test_bound_ratio(self):
        assert bound_ratio(50, 100) == 0.5
        assert bound_ratio(1, 0) == math.inf

    def test_flat_ratios_hold_shape(self):
        s = summarize_ratios([10, 20, 40], [100, 200, 400])
        assert s.shape_holds()
        assert s.max_ratio == pytest.approx(0.1)

    def test_drifting_ratios_fail_shape(self):
        s = summarize_ratios([10, 40, 160], [100, 200, 400])
        assert not s.shape_holds()

    def test_last_over_first(self):
        s = summarize_ratios([1, 2], [10, 10])
        assert s.last_over_first == pytest.approx(2.0)


class TestTables:
    def test_render_basic(self):
        out = render_table([{"n": 8, "rounds": 12}, {"n": 16, "rounds": 30}],
                           title="E3")
        lines = out.splitlines()
        assert lines[0] == "E3"
        assert "n" in lines[1] and "rounds" in lines[1]
        assert len(lines) == 5

    def test_render_alignment(self):
        out = render_table([{"a": 1, "b": "xx"}, {"a": 100000, "b": "y"}])
        rows = out.splitlines()
        assert len(set(map(len, rows[1:]))) == 1  # aligned widths

    def test_missing_cells(self):
        out = render_table([{"a": 1}, {"b": 2}])
        assert "a" in out and "b" in out

    def test_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_float_formatting(self):
        assert format_row({"x": 2.0, "y": 0.3333333}) == "x=2  y=0.333"

    def test_explicit_columns(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]
