"""Compact routing (repro.routing)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graphs import Graph, apsp, grid2d, path_graph, ring
from repro.routing import (
    build_routing_scheme,
    evaluate_routing,
    route_packet,
)
from repro.routing.tables import cluster_tree, _dfs_intervals
from repro.tz import sample_hierarchy
from repro.tz.centralized import compute_pivot_keys


@pytest.fixture(scope="module")
def built(er_weighted):
    scheme = build_routing_scheme(er_weighted, k=3, seed=7)
    return er_weighted, scheme, apsp(er_weighted)


class TestClusterTrees:
    def test_tree_edges_are_graph_edges(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 2, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        dist, parent = cluster_tree(er_weighted, 0, pk[1])
        for u, p in parent.items():
            if p is not None:
                assert er_weighted.has_edge(u, p)

    def test_tree_distances_decrease_toward_root(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 2, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        dist, parent = cluster_tree(er_weighted, 0, pk[1])
        for u, p in parent.items():
            if p is not None:
                assert dist[p] < dist[u]
                assert dist[u] == pytest.approx(
                    dist[p] + er_weighted.weight(p, u))

    def test_intervals_nest_properly(self):
        # hand-built tree: 0-(1,2), 1-(3)
        members = {0: 0.0, 1: 1.0, 2: 1.0, 3: 2.0}
        parent = {0: None, 1: 0, 2: 0, 3: 1}
        iv, children = _dfs_intervals(members, parent, 0)
        a, b = iv[0]
        assert (a, b) == (0, 4)
        for u in (1, 2, 3):
            assert a < iv[u][0] and iv[u][1] <= b
        # child subtree of 1 contains 3
        assert iv[1][0] <= iv[3][0] < iv[3][1] <= iv[1][1]
        # siblings disjoint
        assert iv[1][1] <= iv[2][0] or iv[2][1] <= iv[1][0]


class TestRoutes:
    def test_paths_follow_edges(self, built):
        g, scheme, d = built
        for u, v in [(0, 1), (0, 35), (10, 25), (7, 8)]:
            res = route_packet(scheme, g, u, v)
            assert res.path[0] == u and res.path[-1] == v
            for a, b in zip(res.path, res.path[1:]):
                assert g.has_edge(a, b)

    def test_weight_matches_path(self, built):
        g, scheme, d = built
        res = route_packet(scheme, g, 3, 30)
        assert res.weight == pytest.approx(sum(
            g.weight(a, b) for a, b in zip(res.path, res.path[1:])))

    def test_self_route(self, built):
        g, scheme, _ = built
        res = route_packet(scheme, g, 5, 5)
        assert res.path == (5,) and res.weight == 0.0

    def test_stretch_bound_all_pairs(self, built):
        g, scheme, d = built
        rep = evaluate_routing(scheme, g, d)
        assert rep["max_stretch"] <= scheme.stretch_bound() + 1e-9
        assert rep["mean_stretch"] >= 1.0 - 1e-9

    def test_k1_routes_exactly(self, er_weighted):
        scheme = build_routing_scheme(er_weighted, k=1, seed=2)
        d = apsp(er_weighted)
        rep = evaluate_routing(scheme, er_weighted, d)
        assert rep["max_stretch"] == pytest.approx(1.0)

    def test_bunch_member_routes_exactly(self, built):
        # if v is in u's bunch, the route is a shortest path
        g, scheme, d = built
        checked = 0
        for u in range(g.n):
            for v in scheme.tables[u].entries:
                if v == u:
                    continue
                res = route_packet(scheme, g, u, v)
                assert res.weight == pytest.approx(d[u, v])
                checked += 1
        assert checked > 0

    def test_structured_topologies(self):
        for g in (ring(12), grid2d(4, 4), path_graph(9)):
            d = apsp(g)
            scheme = build_routing_scheme(g, k=2, seed=3)
            rep = evaluate_routing(scheme, g, d)
            assert rep["max_stretch"] <= scheme.stretch_bound() + 1e-9


class TestSizes:
    def test_address_is_Ok_words(self, built):
        _, scheme, _ = built
        assert scheme.max_address_words() == 1 + 3 * scheme.k

    def test_tables_shrink_with_k(self, er_weighted):
        s1 = build_routing_scheme(er_weighted, k=1, seed=4)
        s3 = build_routing_scheme(er_weighted, k=3, seed=4)
        assert s3.max_table_words() < s1.max_table_words()

    def test_requires_k_or_hierarchy(self, er_weighted):
        with pytest.raises(ConfigError):
            build_routing_scheme(er_weighted)


class TestRoutingProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10**6),
           k=st.integers(min_value=1, max_value=3))
    def test_random_instances(self, seed, k):
        # draw a small random connected graph deterministically from the
        # hypothesis-chosen seed (spanning tree + chords)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        g = Graph(n)
        for v in range(1, n):
            g.add_edge(int(rng.integers(0, v)), v,
                       float(rng.integers(1, 9)))
        for _ in range(n // 2):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v, float(rng.integers(1, 9)))
        d = apsp(g)
        scheme = build_routing_scheme(g, k=k, seed=seed)
        rep = evaluate_routing(scheme, g, d)
        assert rep["max_stretch"] <= scheme.stretch_bound() + 1e-9
