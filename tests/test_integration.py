"""End-to-end integration scenarios crossing all subsystems."""


import pytest

from repro import build_sketches
from repro.graphs import (
    apsp,
    assign_exponential_weights,
    barabasi_albert,
    caterpillar,
    graph_stats,
    random_geometric,
    shortest_path_diameter,
)
from repro.oracle import evaluate_stretch, simulate_online_exchange


class TestP2POverlayScenario:
    """The paper's motivating application (Section 2.1): distance
    estimation in a P2P-like overlay."""

    @pytest.fixture(scope="class")
    def overlay(self):
        g = barabasi_albert(48, m_attach=2, seed=90)
        return g, apsp(g)

    def test_tz_pipeline(self, overlay):
        g, d = overlay
        built = build_sketches(g, scheme="tz", mode="distributed", k=3,
                               seed=91)
        rep = evaluate_stretch(d, built.query)
        assert rep.underestimates == 0
        assert rep.max_stretch <= built.stretch_bound()
        # small worlds: most pairs should be answered near-exactly
        assert rep.mean_stretch <= 2.0

    def test_online_query_beats_fresh_computation(self, overlay):
        g, _ = overlay
        built = build_sketches(g, scheme="tz", k=3, seed=92)
        words = built.max_size_words()
        cost, metrics = simulate_online_exchange(g, u=0, v=g.n - 1,
                                                 sketch_words=words)
        from repro.algorithms import single_source_distances

        _, _, bf = single_source_distances(g, 0, seed=93)
        # with D ~ log n, shipping a sketch is cheap; BF floods everything
        assert metrics.messages < bf.messages


class TestWeightedNetworkScenario:
    """Heavy-tailed weights: S >> D, the regime where sketches matter."""

    @pytest.fixture(scope="class")
    def network(self):
        g = assign_exponential_weights(barabasi_albert(40, seed=94),
                                       scale=30, seed=95)
        return g, apsp(g)

    def test_stats_show_gap(self, network):
        g, _ = network
        st = graph_stats(g)
        assert st.shortest_path_diameter >= st.hop_diameter

    def test_all_schemes_agree_on_sandwich(self, network):
        g, d = network
        for scheme, params in [("tz", {"k": 2}), ("stretch3", {"eps": 0.3}),
                               ("cdg", {"eps": 0.3, "k": 2}),
                               ("graceful", {})]:
            built = build_sketches(g, scheme=scheme, seed=96, **params)
            rep = evaluate_stretch(d, built.query, eps=built.slack())
            assert rep.underestimates == 0
            assert rep.max_stretch <= built.stretch_bound() + 1e-9


class TestGeometricScenario:
    """Network-coordinate setting (Vivaldi/Meridian comparison point)."""

    def test_geometric_distances_well_approximated(self):
        g = random_geometric(42, seed=97)
        d = apsp(g)
        built = build_sketches(g, scheme="graceful", seed=98)
        rep = evaluate_stretch(d, built.query)
        assert rep.mean_stretch <= 1.5  # O(1) average stretch in practice

    def test_distributed_graceful_cost_scales_with_S(self):
        g = random_geometric(24, seed=99)
        S = shortest_path_diameter(g)
        built = build_sketches(g, scheme="graceful", mode="distributed",
                               seed=100)
        from repro.analysis import graceful_round_bound

        assert built.metrics.rounds <= graceful_round_bound(g.n, S)


class TestCaterpillarScenario:
    def test_tz_handles_pathological_weights(self):
        g = caterpillar(spine=8, legs_per_node=2, spine_weight=50.0)
        d = apsp(g)
        built = build_sketches(g, scheme="tz", mode="distributed", k=2,
                               seed=101, sync="echo")
        rep = evaluate_stretch(d, built.query)
        assert rep.underestimates == 0
        assert rep.max_stretch <= 3 + 1e-9


class TestCrossSchemeConsistency:
    def test_tradeoff_ordering_holds(self, er_unit, er_unit_apsp):
        """More sketch budget should buy better observed stretch:
        stretch3 >= cdg in size, <= in observed stretch (on far pairs)."""
        eps = 0.25
        s3 = build_sketches(er_unit, scheme="stretch3", eps=eps, seed=102)
        cdg = build_sketches(er_unit, scheme="cdg", eps=eps, k=2, seed=102)
        r3 = evaluate_stretch(er_unit_apsp, s3.query, eps=eps)
        rc = evaluate_stretch(er_unit_apsp, cdg.query, eps=eps)
        assert r3.max_stretch <= rc.max_stretch + 1e-9

    def test_graceful_dominates_worst_component(self, er_unit, er_unit_apsp):
        gf = build_sketches(er_unit, scheme="graceful", seed=103)
        r = evaluate_stretch(er_unit_apsp, gf.query)
        # min-over-components can only improve on any single component
        comp0 = lambda u, v: gf.sketches[u].components[0].estimate_to(
            gf.sketches[v].components[0])
        r0 = evaluate_stretch(er_unit_apsp, comp0)
        assert r.mean_stretch <= r0.mean_stretch + 1e-9
