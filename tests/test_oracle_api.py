"""Public API (repro.oracle.api, repro.oracle.schemes)."""

import pytest

from repro import build_sketches
from repro.errors import ConfigError
from repro.oracle.schemes import SCHEMES, get_scheme


class TestRegistry:
    def test_all_schemes_present(self):
        assert set(SCHEMES) == {"tz", "stretch3", "cdg", "graceful"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheme"):
            get_scheme("magic")

    def test_stretch_bounds(self):
        assert SCHEMES["tz"].stretch_bound({"k": 3}) == 5
        assert SCHEMES["stretch3"].stretch_bound({"eps": 0.1}) == 3
        assert SCHEMES["cdg"].stretch_bound({"k": 2}) == 15
        assert SCHEMES["graceful"].stretch_bound({"n": 64}) == 47

    def test_slack_semantics(self):
        assert SCHEMES["tz"].slack_of({"k": 3}) is None
        assert SCHEMES["stretch3"].slack_of({"eps": 0.2}) == 0.2
        assert SCHEMES["graceful"].slack_of({"n": 10}) is None

    def test_describe(self):
        text = SCHEMES["cdg"].describe({"eps": 0.25, "k": 2})
        assert "15" in text and "0.25" in text


class TestBuildDispatch:
    def test_tz_requires_k(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="tz")

    def test_stretch3_requires_eps(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="stretch3")

    def test_cdg_requires_both(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="cdg", eps=0.2)

    def test_bad_mode_rejected(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="tz", mode="quantum", k=2)

    def test_centralized_has_no_metrics(self, er_unit):
        b = build_sketches(er_unit, scheme="tz", k=2, seed=1)
        assert b.metrics is None
        assert "centralized" in b.describe()

    def test_distributed_has_metrics(self, er_unit):
        b = build_sketches(er_unit, scheme="tz", mode="distributed", k=2,
                           seed=1)
        assert b.metrics is not None and b.metrics.rounds > 0
        assert "rounds" in b.describe()

    def test_extras_expose_hierarchy_and_net(self, er_unit):
        b = build_sketches(er_unit, scheme="cdg", eps=0.3, k=2, seed=2)
        assert "net" in b.extras and "hierarchy" in b.extras


class TestQueryFacade:
    def test_query_all_schemes(self, er_unit, er_unit_apsp):
        for scheme, params in [("tz", {"k": 2}), ("stretch3", {"eps": 0.3}),
                               ("cdg", {"eps": 0.3, "k": 2}),
                               ("graceful", {})]:
            b = build_sketches(er_unit, scheme=scheme, seed=3, **params)
            est = b.query(0, er_unit.n - 1)
            assert est >= er_unit_apsp[0, er_unit.n - 1] - 1e-9

    def test_tz_query_method_passthrough(self, er_unit):
        b = build_sketches(er_unit, scheme="tz", k=2, seed=4)
        a = b.query(0, 5, method="paper")
        c = b.query(0, 5, method="classic")
        assert a > 0 and c > 0

    def test_size_helpers(self, er_unit):
        b = build_sketches(er_unit, scheme="tz", k=2, seed=5)
        sizes = b.sizes_words()
        assert len(sizes) == er_unit.n
        assert b.max_size_words() == max(sizes)
        assert b.mean_size_words() == pytest.approx(sum(sizes) / len(sizes))

    def test_stretch_bound_and_slack_facade(self, er_unit):
        b = build_sketches(er_unit, scheme="cdg", eps=0.3, k=2, seed=6)
        assert b.stretch_bound() == 15
        assert b.slack() == 0.3


class TestSeedSemantics:
    def test_same_seed_same_sketches(self, er_unit):
        a = build_sketches(er_unit, scheme="tz", k=2, seed=7)
        b = build_sketches(er_unit, scheme="tz", k=2, seed=7)
        for sa, sb in zip(a.sketches, b.sketches):
            assert sa.pivots == sb.pivots and sa.bunch == sb.bunch

    def test_shared_hierarchy_links_modes(self, er_unit):
        a = build_sketches(er_unit, scheme="tz", k=2, seed=8)
        h = a.extras["hierarchy"]
        b = build_sketches(er_unit, scheme="tz", mode="distributed",
                           hierarchy=h, seed=9)
        for sa, sb in zip(a.sketches, b.sketches):
            assert sa.pivots == sb.pivots and sa.bunch == sb.bunch
