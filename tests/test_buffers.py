"""The zero-copy memory plane (repro.service.buffers): packs, handles,
the array-tree codec, shared ring areas, and deterministic teardown."""

import os
import pickle

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.service.buffers import (
    BufferPack,
    SharedArea,
    build_tree,
    flatten_tree,
    live_segment_names,
    next_pow2,
    plan_layout,
    plan_tree,
    read_tree,
    write_tree,
)


@pytest.fixture()
def arrays():
    return {
        "ids": np.arange(17, dtype=np.int64),
        "dists": np.linspace(0.0, 4.0, 23),
        "table": np.arange(12, dtype=np.float64).reshape(3, 4),
        "empty": np.empty((5, 0), dtype=np.int64),
    }


class TestLayout:
    def test_offsets_are_aligned_and_disjoint(self, arrays):
        manifest, total = plan_layout(arrays)
        end = 0
        for name, dt, shape, off in manifest:
            assert off % 64 == 0
            assert off >= end
            end = off + np.prod(shape, dtype=int) * np.dtype(dt).itemsize
        assert total == end

    def test_layout_follows_insertion_order(self, arrays):
        manifest, _ = plan_layout(arrays)
        assert [row[0] for row in manifest] == list(arrays)


class TestBufferPack:
    @pytest.mark.parametrize("backing", ["heap", "shared", "mmap"])
    def test_round_trip_bitwise(self, arrays, backing, tmp_path):
        path = str(tmp_path / "p.pack") if backing == "mmap" else None
        pack = BufferPack.from_arrays(arrays, backing=backing, path=path)
        try:
            for name, arr in arrays.items():
                got = pack[name]
                assert got.dtype == arr.dtype and got.shape == arr.shape
                assert np.array_equal(got, arr)
                assert not got.flags.writeable  # immutable views
        finally:
            pack.close()

    @pytest.mark.parametrize("backing", ["heap", "shared", "mmap"])
    def test_handle_is_picklable_and_attaches(self, arrays, backing,
                                              tmp_path):
        path = str(tmp_path / "p.pack") if backing == "mmap" else None
        pack = BufferPack.from_arrays(arrays, backing=backing, path=path)
        try:
            handle = pickle.loads(pickle.dumps(pack.handle()))
            attached = BufferPack.attach(handle)
            try:
                for name, arr in arrays.items():
                    assert np.array_equal(attached[name], arr)
            finally:
                attached.close()
        finally:
            pack.close()

    def test_dict_face(self, arrays):
        with BufferPack.from_arrays(arrays) as pack:
            assert pack.names() == list(arrays)
            assert "ids" in pack and "nope" not in pack
            assert set(iter(pack)) == set(arrays)
            view = pack.as_dict()
            assert np.array_equal(view["table"], arrays["table"])

    def test_rejects_unknown_backing(self, arrays):
        with pytest.raises(ConfigError):
            BufferPack.from_arrays(arrays, backing="gpu")

    def test_mmap_needs_a_path(self, arrays):
        with pytest.raises(ConfigError):
            BufferPack.from_arrays(arrays, backing="mmap")

    def test_shared_segment_unlinked_on_close(self, arrays):
        pack = BufferPack.from_arrays(arrays, backing="shared")
        name = pack._segment.name
        assert name in live_segment_names()
        pack.close()
        assert name not in live_segment_names()
        assert not os.path.exists(f"/dev/shm/{name}")
        pack.close()  # idempotent

    def test_mmap_scratch_file_deleted_on_close(self, arrays, tmp_path):
        path = tmp_path / "scratch.pack"
        pack = BufferPack.from_arrays(arrays, backing="mmap",
                                      path=str(path), delete_file=True)
        assert path.exists()
        pack.close()
        assert not path.exists()

    def test_empty_pack(self):
        with BufferPack.from_arrays({}) as pack:
            assert pack.names() == [] and pack.nbytes == 0


class TestArrayTreeCodec:
    TREES = [
        np.arange(9, dtype=np.int64),
        (np.arange(4, dtype=np.int64), np.linspace(0, 1, 6)),
        (np.empty(0, dtype=np.int64),
         (np.arange(3, dtype=np.float64), np.arange(2, dtype=np.int64)),
         np.asarray([7], dtype=np.int64)),
        ((np.arange(5, dtype=np.float64),), ()),
    ]

    @pytest.mark.parametrize("tree", TREES, ids=["array", "pair", "nested",
                                                 "tuples"])
    def test_flatten_build_inverse(self, tree):
        spec, leaves = flatten_tree(tree)
        rebuilt = build_tree(spec, leaves)

        def equal(a, b):
            if isinstance(a, tuple):
                return (isinstance(b, tuple) and len(a) == len(b)
                        and all(equal(x, y) for x, y in zip(a, b)))
            return np.array_equal(a, b)

        assert equal(rebuilt, tree)

    @pytest.mark.parametrize("tree", TREES, ids=["array", "pair", "nested",
                                                 "tuples"])
    def test_buffer_round_trip(self, tree):
        spec, leaves = flatten_tree(tree)
        manifest, total = plan_tree(leaves)
        buf = bytearray(max(total, 1) + 128)
        write_tree(buf, 64, manifest, leaves)
        back = read_tree(buf, 64, spec, manifest)
        _, back_leaves = flatten_tree(back)
        for got, want in zip(back_leaves, leaves):
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)


class TestSharedArea:
    def test_slots_and_cleanup(self):
        area = SharedArea(slot_bytes=256, slots=3, tag="t")
        name = area.name
        assert area.slot_offset(0) == 0
        assert area.slot_offset(1) == 256
        assert area.slot_offset(4) == 256  # ring wrap
        assert name in live_segment_names()
        area.close()
        assert name not in live_segment_names()
        assert not os.path.exists(f"/dev/shm/{name}")
        area.close()  # idempotent

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            SharedArea(slot_bytes=0)
        with pytest.raises(ConfigError):
            SharedArea(slot_bytes=64, slots=0)


def test_next_pow2():
    assert [next_pow2(v) for v in (1, 2, 3, 64, 65)] == [1, 2, 4, 64, 128]
