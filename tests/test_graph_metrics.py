"""Exact distances and diameters (repro.graphs.metrics)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    apsp,
    apsp_hops,
    graph_stats,
    grid2d,
    hop_diameter,
    path_graph,
    ring,
    shortest_path_diameter,
    star_path,
    weighted_diameter,
)
from repro.graphs.metrics import single_source_hops_on_shortest_paths


class TestAPSP:
    def test_path_distances(self):
        d = apsp(path_graph(4))
        assert d[0, 3] == 3.0
        assert d[1, 2] == 1.0

    def test_weighted(self, weighted_diamond):
        d = apsp(weighted_diamond)
        assert d[0, 3] == 2.0  # via 0-1-3, not the weight-10 direct edge

    def test_symmetric(self, er_weighted):
        d = apsp(er_weighted)
        assert np.allclose(d, d.T)

    def test_zero_diagonal(self, er_weighted):
        assert np.all(np.diag(apsp(er_weighted)) == 0.0)

    def test_triangle_inequality(self, er_weighted):
        d = apsp(er_weighted)
        # d[u,v] <= d[u,w] + d[w,v] for all w — vectorized check
        via = d[:, :, None] + d[None, :, :]  # via[u, w, v]
        assert np.all(d[:, None, :] <= via.transpose(0, 1, 2) + 1e-9)

    def test_matches_networkx(self, er_weighted):
        import networkx as nx

        d = apsp(er_weighted)
        nxd = dict(nx.all_pairs_dijkstra_path_length(er_weighted.to_networkx()))
        for u in er_weighted.nodes():
            for v in er_weighted.nodes():
                assert d[u, v] == pytest.approx(nxd[u][v])

    def test_singleton(self):
        assert apsp(Graph(1)).shape == (1, 1)


class TestHops:
    def test_hops_ignore_weights(self, weighted_diamond):
        h = apsp_hops(weighted_diamond)
        assert h[0, 3] == 1.0  # the direct heavy edge is one hop

    def test_hop_diameter_grid(self):
        assert hop_diameter(grid2d(4, 4)) == 6

    def test_hop_diameter_disconnected_raises(self):
        with pytest.raises(GraphError):
            hop_diameter(Graph(3, [(0, 1, 1.0)]))


class TestShortestPathDiameter:
    def test_unit_weights_make_S_equal_D(self, er_unit):
        assert shortest_path_diameter(er_unit) == hop_diameter(er_unit)

    def test_ring(self):
        assert shortest_path_diameter(ring(10)) == 5

    def test_star_path_gap(self):
        g = star_path(15)
        assert shortest_path_diameter(g) == 14
        assert hop_diameter(g) == 2

    def test_S_at_least_D(self, er_weighted, er_heavy, geo_graph):
        for g in (er_weighted, er_heavy, geo_graph):
            assert shortest_path_diameter(g) >= hop_diameter(g)

    def test_min_hop_among_shortest_paths(self):
        # two shortest 0->3 paths of weight 4: 0-1-2-3 (3 hops, 1+1+2) and
        # 0-4-3 (2 hops, 2+2): h(0,3) must be 2
        g = Graph(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0),
                      (0, 4, 2.0), (4, 3, 2.0)])
        dist, hops = single_source_hops_on_shortest_paths(g, 0)
        assert dist[3] == 4.0
        assert hops[3] == 2.0


class TestGraphStats:
    def test_bundle(self, er_unit):
        st = graph_stats(er_unit)
        assert st.n == er_unit.n
        assert st.m == er_unit.m
        assert st.hop_diameter == st.shortest_path_diameter  # unit weights
        row = st.as_row()
        assert row["n"] == er_unit.n and "S" in row

    def test_weighted_diameter(self):
        g = path_graph(3)
        g.set_weight(0, 1, 5.0)
        assert weighted_diameter(g) == 6.0
