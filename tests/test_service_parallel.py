"""Parallel sketch construction (repro.service.parallel): determinism.

The contract under test: for a fixed seed, the worker count is invisible —
``jobs=1`` and ``jobs=4`` produce *byte-identical* serialized oracles, and
both equal the serial reference construction sketch-for-sketch.
"""

from __future__ import annotations

import pytest

from repro import build_sketches
from repro.errors import ConfigError
from repro.oracle.serialization import save_sketch_set
from repro.service import build_tz_sketches_parallel
from repro.tz import build_tz_sketches_centralized


class TestDeterminism:
    def test_jobs_1_vs_4_byte_identical(self, tmp_path, er_weighted):
        p1 = tmp_path / "jobs1.jsonl"
        p4 = tmp_path / "jobs4.jsonl"
        sk1, h1 = build_tz_sketches_parallel(er_weighted, k=3, seed=42,
                                             jobs=1)
        sk4, h4 = build_tz_sketches_parallel(er_weighted, k=3, seed=42,
                                             jobs=4)
        save_sketch_set(sk1, p1)
        save_sketch_set(sk4, p4)
        assert p1.read_bytes() == p4.read_bytes()
        assert (h1.level == h4.level).all()

    def test_matches_serial_reference(self, er_weighted):
        ref, href = build_tz_sketches_centralized(er_weighted, k=3, seed=42)
        par, hpar = build_tz_sketches_parallel(er_weighted, k=3, seed=42,
                                               jobs=3)
        assert par == ref
        assert (href.level == hpar.level).all()

    def test_shared_hierarchy_shares_output(self, er_unit):
        _, h = build_tz_sketches_centralized(er_unit, k=2, seed=9)
        a, _ = build_tz_sketches_parallel(er_unit, hierarchy=h, jobs=2)
        b, _ = build_tz_sketches_centralized(er_unit, hierarchy=h)
        assert a == b

    def test_through_build_sketches_api(self, tmp_path, er_unit):
        serial = build_sketches(er_unit, scheme="tz", k=2, seed=7)
        fanned = build_sketches(er_unit, scheme="tz", k=2, seed=7, jobs=2)
        ps, pf = tmp_path / "s.jsonl", tmp_path / "f.jsonl"
        save_sketch_set(serial.sketches, ps)
        save_sketch_set(fanned.sketches, pf)
        assert ps.read_bytes() == pf.read_bytes()

    def test_jobs_clamped_to_sources(self, small_ring):
        # more workers than cluster roots must not crash or change output
        a, _ = build_tz_sketches_parallel(small_ring, k=2, seed=1, jobs=64)
        b, _ = build_tz_sketches_centralized(small_ring, k=2, seed=1)
        assert a == b


class TestValidation:
    def test_needs_k_or_hierarchy(self, er_unit):
        with pytest.raises(ConfigError):
            build_tz_sketches_parallel(er_unit)

    def test_conflicting_k(self, er_unit):
        from repro.tz import sample_hierarchy

        h = sample_hierarchy(er_unit.n, 2, seed=1)
        with pytest.raises(ConfigError):
            build_tz_sketches_parallel(er_unit, k=3, hierarchy=h)

    def test_rejects_bad_jobs(self, er_unit):
        with pytest.raises(ConfigError):
            build_tz_sketches_parallel(er_unit, k=2, seed=1, jobs=0)

    def test_jobs_param_rejected_for_other_schemes(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=1,
                           jobs=2)
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="tz", k=2, mode="distributed",
                           seed=1, jobs=2)
