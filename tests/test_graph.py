"""The Graph type (repro.graphs.graph)."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(5)
        assert g.n == 5
        assert g.m == 0

    def test_zero_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(0)

    def test_edges_in_constructor(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.m == 2
        assert g.weight(0, 1) == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(1, 1, 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 2, 1.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 1, -1.0)

    def test_infinite_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2).add_edge(0, 1, float("inf"))

    def test_duplicate_edge_overwrites(self):
        g = Graph(2, [(0, 1, 1.0)])
        g.add_edge(0, 1, 5.0)
        assert g.m == 1
        assert g.weight(0, 1) == 5.0


class TestQueries:
    def test_undirected_symmetry(self):
        g = Graph(3, [(0, 1, 2.5)])
        assert g.weight(1, 0) == 2.5
        assert g.has_edge(1, 0)

    def test_neighbors(self):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 2.0)])
        assert g.neighbors(0) == {1: 1.0, 2: 2.0}
        assert g.degree(0) == 2
        assert g.degree(3) == 0

    def test_edges_iterates_once_per_edge(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_missing_weight_raises(self):
        with pytest.raises(GraphError):
            Graph(3).weight(0, 1)

    def test_max_weight(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 7.0)])
        assert g.max_weight() == 7.0
        assert Graph(2).max_weight() == 0.0

    def test_set_weight_requires_existing_edge(self):
        g = Graph(3, [(0, 1, 1.0)])
        g.set_weight(0, 1, 9.0)
        assert g.weight(1, 0) == 9.0
        with pytest.raises(GraphError):
            g.set_weight(1, 2, 1.0)


class TestStructure:
    def test_connected(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert g.is_connected()

    def test_disconnected(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not g.is_connected()

    def test_singleton_is_connected(self):
        assert Graph(1).is_connected()

    def test_validate_rejects_disconnected(self):
        with pytest.raises(GraphError, match="not connected"):
            Graph(4, [(0, 1, 1.0), (2, 3, 1.0)]).validate()

    def test_validate_rejects_superpolynomial_weights(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 3.0**40)])
        with pytest.raises(GraphError, match="polynomial"):
            g.validate()

    def test_validate_accepts_model_graph(self):
        Graph(3, [(0, 1, 1.0), (1, 2, 2.0)]).validate()


class TestConversions:
    def test_csr_round_trip(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        csr = g.to_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 2.0
        assert csr[1, 0] == 2.0

    def test_csr_cache_invalidated_on_mutation(self):
        g = Graph(3, [(0, 1, 2.0)])
        _ = g.to_csr()
        g.add_edge(1, 2, 4.0)
        assert g.to_csr()[1, 2] == 4.0

    def test_to_networkx(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg[0][1]["weight"] == 2.0

    def test_copy_is_deep_for_adjacency(self):
        g = Graph(3, [(0, 1, 2.0)])
        h = g.copy()
        h.add_edge(1, 2, 1.0)
        assert g.m == 1 and h.m == 2

    def test_equality(self):
        a = Graph(2, [(0, 1, 1.0)])
        b = Graph(2, [(0, 1, 1.0)])
        assert a == b
        b.set_weight(0, 1, 2.0)
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(2))
