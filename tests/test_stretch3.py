"""Stretch-3 ε-slack sketches (repro.slack.stretch3, Theorem 4.3)."""

import pytest

from repro.errors import QueryError
from repro.oracle.evaluation import eps_far_mask
from repro.slack.density_net import sample_density_net
from repro.slack.stretch3 import (
    Stretch3Sketch,
    build_stretch3_centralized,
    build_stretch3_distributed,
)


EPS = 0.25


@pytest.fixture(scope="module")
def shared_net():
    return sample_density_net(36, EPS, seed=55)


class TestBuildEquivalence:
    def test_distributed_matches_centralized(self, er_weighted,
                                             er_weighted_apsp, shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net,
                                           dist_matrix=er_weighted_apsp)
        ds, _, metrics = build_stretch3_distributed(er_weighted, EPS,
                                                    net=shared_net, seed=1)
        for a, b in zip(cs, ds):
            assert set(a.entries) == set(b.entries)
            for w in a.entries:
                assert a.entries[w] == pytest.approx(b.entries[w])
        assert metrics.rounds >= 1

    def test_sketch_covers_whole_net(self, er_weighted, shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net)
        assert all(set(s.entries) == set(shared_net.members) for s in cs)

    def test_size_words(self, er_weighted, shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net)
        assert cs[0].size_words() == 2 * shared_net.size()


class TestGuarantees:
    def test_never_underestimates(self, er_weighted, er_weighted_apsp,
                                  shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net,
                                           dist_matrix=er_weighted_apsp)
        n = er_weighted.n
        for u in range(n):
            for v in range(u + 1, n):
                assert cs[u].estimate_to(cs[v]) >= \
                    er_weighted_apsp[u, v] - 1e-9

    def test_stretch3_on_far_pairs(self, er_weighted, er_weighted_apsp,
                                   shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net,
                                           dist_matrix=er_weighted_apsp)
        far = eps_far_mask(er_weighted_apsp, EPS)
        n = er_weighted.n
        checked = 0
        for u in range(n):
            for v in range(u + 1, n):
                if far[u, v] or far[v, u]:
                    est = cs[u].estimate_to(cs[v])
                    assert est <= 3 * er_weighted_apsp[u, v] + 1e-9
                    checked += 1
        assert checked > 0

    def test_net_member_queries_exact_to_anyone(self, er_weighted,
                                                er_weighted_apsp, shared_net):
        # if u is itself a net node, min_w d(u,w)+d(w,v) <= d(u,u)+d(u,v)
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net,
                                           dist_matrix=er_weighted_apsp)
        u = shared_net.members[0]
        for v in range(er_weighted.n):
            if v != u:
                assert cs[u].estimate_to(cs[v]) == \
                    pytest.approx(er_weighted_apsp[u, v])

    def test_symmetric(self, er_weighted, shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net)
        assert cs[3].estimate_to(cs[17]) == cs[17].estimate_to(cs[3])

    def test_same_node_zero(self, er_weighted, shared_net):
        cs, _ = build_stretch3_centralized(er_weighted, EPS, net=shared_net)
        assert cs[4].estimate_to(cs[4]) == 0.0

    def test_disjoint_nets_raise(self):
        a = Stretch3Sketch(node=0, eps=0.5, entries={1: 1.0})
        b = Stretch3Sketch(node=2, eps=0.5, entries={3: 1.0})
        with pytest.raises(QueryError):
            a.estimate_to(b)
