"""Leader election, BFS trees, and tree broadcast (Section 3.3 setup)."""


from repro.algorithms import build_bfs_tree, tree_broadcast
from repro.graphs import Graph, apsp_hops


def check_tree(graph, trees):
    """Structural validation shared by several tests."""
    leader = max(graph.nodes())
    assert all(t.leader == leader for t in trees)
    # exactly one root, which is the leader
    roots = [u for u, t in enumerate(trees) if t.parent is None]
    assert roots == [leader]
    # parent edges exist, children match parents
    for u, t in enumerate(trees):
        if t.parent is not None:
            assert graph.has_edge(u, t.parent)
            assert u in trees[t.parent].children
        for c in t.children:
            assert trees[c].parent == u


class TestBFSTree:
    def test_structure_on_families(self, er_unit, small_grid, small_ring):
        for g in (er_unit, small_grid, small_ring):
            trees, _ = build_bfs_tree(g)
            check_tree(g, trees)

    def test_depths_are_bfs_exact(self, er_unit):
        trees, _ = build_bfs_tree(er_unit)
        hops = apsp_hops(er_unit)
        leader = er_unit.n - 1
        for u, t in enumerate(trees):
            assert t.depth == hops[leader, u]

    def test_depth_consistency_along_parents(self, small_grid):
        trees, _ = build_bfs_tree(small_grid)
        for u, t in enumerate(trees):
            if t.parent is not None:
                assert t.depth == trees[t.parent].depth + 1

    def test_is_leader_helper(self, small_ring):
        trees, _ = build_bfs_tree(small_ring)
        assert trees[small_ring.n - 1].is_leader()
        assert not trees[0].is_leader()

    def test_message_cost_reasonable(self, er_unit):
        # flooding costs O(|E|) messages per improvement wave; with max-ID
        # flooding total messages stay O(|E| * small)
        trees, metrics = build_bfs_tree(er_unit)
        assert metrics.messages <= 20 * er_unit.m

    def test_two_node_graph(self):
        g = Graph(2, [(0, 1, 1.0)])
        trees, _ = build_bfs_tree(g)
        assert trees[1].is_leader()
        assert trees[0].parent == 1
        assert trees[1].children == (0,)


class TestTreeBroadcast:
    def test_value_reaches_all(self, small_grid):
        trees, _ = build_bfs_tree(small_grid)
        values, _ = tree_broadcast(small_grid, trees, value=("S", 42))
        assert all(v == ("S", 42) for v in values)

    def test_rounds_linear_in_depth(self, small_ring):
        trees, _ = build_bfs_tree(small_ring)
        depth = max(t.depth for t in trees)
        _, metrics = tree_broadcast(small_ring, trees, value=1)
        # down-wave + ack-wave
        assert metrics.rounds <= 2 * depth + 2

    def test_messages_tree_only(self, er_unit):
        trees, _ = build_bfs_tree(er_unit)
        _, metrics = tree_broadcast(er_unit, trees, value=1)
        # broadcast + ack over n-1 tree edges each
        assert metrics.messages == 2 * (er_unit.n - 1)

    def test_root_learns_completion(self, small_grid):
        from repro.congest import Simulator
        from repro.algorithms.broadcast import TreeBroadcastProgram

        trees, _ = build_bfs_tree(small_grid)
        sim = Simulator(small_grid,
                        lambda u: TreeBroadcastProgram(u, trees[u], value=5))
        res = sim.run()
        leader = small_grid.n - 1
        assert res.programs[leader].root_done
