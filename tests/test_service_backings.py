"""Backing equivalence: every IndexStore answers bit-identically whether
its arrays live on the heap, in a shared-memory segment, or in a
memory-mapped file — and whether the batch runs in-process or through
shard workers attached to those backings.

This is the determinism contract of the buffer-pack refactor: the pack
stores exact bytes and the stores are pure logic over them, so *nothing*
about the physical memory plane may leak into answers — including which
pairs raise :class:`~repro.errors.QueryError` on disconnected graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_sketches
from repro.errors import QueryError
from repro.graphs import Graph, assign_uniform_weights, erdos_renyi
from repro.service import (
    QueryEngine,
    ShardServer,
    build_index,
    index_from_handle,
    index_from_pack,
    index_to_pack,
    sample_query_pairs,
)
from repro.tz import build_tz_sketches_centralized

SCHEMES = ["tz", "stretch3", "cdg", "graceful"]
BACKINGS = ["heap", "shared", "mmap"]


@pytest.fixture(scope="module")
def built_sets(er_weighted, er_unit):
    tz, _ = build_tz_sketches_centralized(er_weighted, k=3, seed=11)
    return {
        "tz": tz,
        "stretch3": build_sketches(er_unit, scheme="stretch3", eps=0.3,
                                   seed=2).sketches,
        "cdg": build_sketches(er_unit, scheme="cdg", eps=0.3, k=2,
                              seed=3).sketches,
        "graceful": build_sketches(er_unit, scheme="graceful",
                                   seed=4).sketches,
    }


def _pack_kwargs(backing, tmp_path, name):
    if backing == "mmap":
        return {"path": str(tmp_path / f"{name}.pack"), "delete_file": True}
    return {}


class TestPackEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shards", [1, 3])
    def test_all_backings_bit_identical(self, built_sets, scheme, shards,
                                        tmp_path):
        sketches = built_sets[scheme]
        index = build_index(sketches, num_shards=shards)
        pairs = sample_query_pairs(len(sketches), 250, seed=13)
        us, vs = pairs[:, 0], pairs[:, 1]
        want = index.estimate_many(us, vs)
        for backing in BACKINGS:
            packed = index_to_pack(index, backing=backing,
                                   **_pack_kwargs(backing, tmp_path,
                                                  f"{scheme}-{shards}"))
            try:
                store = index_from_pack(packed)
                got = store.estimate_many(us, vs)
                assert got.tolist() == want.tolist(), (scheme, backing)
                # the rebuilt store is the same logical index
                assert store == index, (scheme, backing)
                assert store.nnz() == index.nnz()
                assert store.shard_sizes() == index.shard_sizes()
            finally:
                packed.close()

    @pytest.mark.parametrize("backing", BACKINGS)
    def test_pack_built_index_is_picklable(self, built_sets, backing,
                                           tmp_path):
        """A pack-built store must still pickle (spawn-context pools ship
        the index through initargs in heap memory mode): the pack source
        is dropped and the arrays themselves travel."""
        import pickle

        index = build_index(built_sets["tz"], num_shards=2)
        packed = index_to_pack(index, backing=backing,
                               **_pack_kwargs(backing, tmp_path, "pkl"))
        try:
            store = index_from_pack(packed)
            clone = pickle.loads(pickle.dumps(store))
            pairs = sample_query_pairs(index.n, 60, seed=2)
            assert np.array_equal(
                clone.estimate_many(pairs[:, 0], pairs[:, 1]),
                index.estimate_many(pairs[:, 0], pairs[:, 1]))
        finally:
            packed.close()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_handle_attach_equivalence(self, built_sets, scheme):
        """The worker-side attach path (handle -> pack -> store) answers
        like the original, in this very process."""
        index = build_index(built_sets[scheme], num_shards=2)
        packed = index_to_pack(index, backing="shared")
        try:
            attached = index_from_handle(packed.handle())
            pairs = sample_query_pairs(index.n, 120, seed=5)
            assert np.array_equal(
                attached.estimate_many(pairs[:, 0], pairs[:, 1]),
                index.estimate_many(pairs[:, 0], pairs[:, 1]))
        finally:
            packed.close()

    def test_query_error_parity_on_disconnected_graphs(self, tmp_path):
        """A pair unresolved on the heap store is unresolved on every
        backing — same error, same (first) offending row."""
        g = Graph(6, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0),
                      (4, 5, 1.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        index = build_index(sketches, num_shards=2)
        us = np.asarray([0, 0, 2])
        vs = np.asarray([1, 5, 4])
        with pytest.raises(QueryError) as heap_err:
            index.estimate_many(us, vs)
        for backing in BACKINGS:
            packed = index_to_pack(index, backing=backing,
                                   **_pack_kwargs(backing, tmp_path,
                                                  backing))
            try:
                store = index_from_pack(packed)
                with pytest.raises(QueryError) as err:
                    store.estimate_many(us, vs)
                assert str(err.value) == str(heap_err.value)
                assert err.value.row == heap_err.value.row
                # the resolvable prefix still answers
                assert store.estimate_many(us[:1], vs[:1]).tolist() == \
                    index.estimate_many(us[:1], vs[:1]).tolist()
            finally:
                packed.close()


class TestServerMemoryModes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("memory", ["shared", "mmap"])
    def test_in_process_non_heap_serving(self, built_sets, scheme, memory):
        """jobs=1 with a non-heap plane serves over the packed bytes."""
        index = build_index(built_sets[scheme], num_shards=2)
        pairs = sample_query_pairs(index.n, 150, seed=7)
        want = index.estimate_many(pairs[:, 0], pairs[:, 1])
        with ShardServer(index, jobs=1, memory=memory) as srv:
            assert srv.index is not index  # rebuilt over the pack
            got = srv.estimate_many(pairs[:, 0], pairs[:, 1])
        assert got.tolist() == want.tolist()

    @pytest.mark.parametrize("memory", ["heap", "shared", "mmap"])
    def test_worker_pool_identity(self, built_sets, memory):
        """4 workers over each memory plane produce the jobs=1 bytes
        (rings and attach included), across repeated batches."""
        index = build_index(built_sets["tz"], num_shards=4)
        pairs = sample_query_pairs(index.n, 400, seed=9)
        want = index.estimate_many(pairs[:, 0], pairs[:, 1])
        with ShardServer(index, jobs=4, memory=memory) as srv:
            first = srv.estimate_many(pairs[:, 0], pairs[:, 1])
            again = srv.estimate_many(pairs[:, 0], pairs[:, 1])
            small = srv.estimate_many(pairs[:7, 0], pairs[:7, 1])
        assert first.tolist() == want.tolist()
        assert again.tolist() == want.tolist()
        assert small.tolist() == want[:7].tolist()

    def test_worker_pool_query_error_parity(self):
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        index = build_index(sketches, num_shards=2)
        with ShardServer(index, jobs=2, memory="shared") as srv:
            with pytest.raises(QueryError):
                srv.estimate_many(np.asarray([0]), np.asarray([4]))
            # the pool survives the error and keeps serving
            assert srv.estimate_many(np.asarray([2]), np.asarray([4])
                                     ).tolist() == [2.0]

    def test_engine_memory_modes_identical(self, built_sets):
        sketches = built_sets["stretch3"]
        pairs = sample_query_pairs(len(sketches), 200, seed=3)
        with QueryEngine(sketches, cache_size=0) as base:
            want = base.dist_many(pairs)
        for memory in ("shared", "mmap"):
            with QueryEngine(sketches, cache_size=0, num_shards=3, jobs=2,
                             memory=memory) as eng:
                assert eng.dist_many(pairs).tolist() == want.tolist()

    def test_engine_rejects_memory_without_index(self, built_sets):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            QueryEngine(built_sets["tz"], use_index=False, memory="shared")

    def test_server_rejects_unknown_memory(self, built_sets):
        from repro.errors import ConfigError

        index = build_index(built_sets["tz"])
        with pytest.raises(ConfigError):
            ShardServer(index, memory="vram")

    def test_phase_timings_accumulate_and_reset(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        with ShardServer(index, jobs=1) as srv:
            pairs = sample_query_pairs(index.n, 100, seed=1)
            srv.estimate_many(pairs[:, 0], pairs[:, 1])
            t = srv.timings
            assert t.batches == 1
            assert t.plan > 0.0 and t.shard_answer > 0.0 and t.finish > 0.0
            assert t.ipc == 0.0  # in-process: no transport
            srv.reset_timings()
            assert srv.timings.batches == 0


class TestBackingProperty:
    """Small hypothesis sweep: random graphs x schemes x shard counts,
    heap vs shared vs mmap answers equal (the nightly profile widens
    the example count)."""

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(16, 36), seed=st.integers(0, 1000),
           shards=st.integers(1, 4),
           scheme=st.sampled_from(SCHEMES))
    def test_backings_agree(self, n, seed, shards, scheme, tmp_path_factory):
        g = assign_uniform_weights(erdos_renyi(n, seed=seed), seed=seed + 1)
        kwargs = {"tz": {"k": 2}, "stretch3": {"eps": 0.35},
                  "cdg": {"eps": 0.35, "k": 2}, "graceful": {}}[scheme]
        sketches = build_sketches(g, scheme=scheme, seed=seed + 2,
                                  **kwargs).sketches
        index = build_index(sketches, num_shards=shards)
        pairs = sample_query_pairs(n, 80, seed=seed + 3)
        want = index.estimate_many(pairs[:, 0], pairs[:, 1])
        tmp = tmp_path_factory.mktemp("packs")
        for backing in BACKINGS:
            packed = index_to_pack(index, backing=backing,
                                   **_pack_kwargs(backing, tmp, backing))
            try:
                got = index_from_pack(packed).estimate_many(pairs[:, 0],
                                                            pairs[:, 1])
                assert got.tolist() == want.tolist()
            finally:
                packed.close()
