"""The command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.graphs import read_edgelist


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "net.edges"
    rc = main(["gen", "--family", "er", "--n", "32", "--weights", "uniform",
               "--seed", "1", "-o", str(path)])
    assert rc == 0
    return path


@pytest.fixture()
def sketch_file(tmp_path, graph_file):
    path = tmp_path / "sk.jsonl"
    rc = main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return path


class TestGen:
    def test_writes_connected_graph(self, graph_file):
        g = read_edgelist(graph_file)
        assert g.n == 32 and g.is_connected()

    def test_weight_schemes(self, tmp_path):
        path = tmp_path / "w.edges"
        main(["gen", "--family", "ring", "--n", "12", "--weights",
              "exponential", "--seed", "2", "-o", str(path)])
        g = read_edgelist(path)
        assert any(w > 1.0 for _, _, w in g.edges())

    def test_families(self, tmp_path):
        for fam in ("ba", "geo", "grid", "ring", "star_path"):
            path = tmp_path / f"{fam}.edges"
            rc = main(["gen", "--family", fam, "--n", "20", "--seed", "4",
                       "-o", str(path)])
            assert rc == 0
            assert read_edgelist(path).is_connected()


class TestStats:
    def test_json_report(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n"] == 32
        assert report["shortest_path_diameter"] >= report["hop_diameter"]


class TestBuild:
    def test_build_writes_sketches(self, sketch_file, graph_file):
        from repro.oracle.serialization import load_sketch_set

        sketches = load_sketch_set(sketch_file)
        assert len(sketches) == 32

    def test_distributed_build_reports_cost(self, tmp_path, graph_file,
                                            capsys):
        path = tmp_path / "d.jsonl"
        rc = main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
                   "--mode", "distributed", "--seed", "3", "-o", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_slack_scheme(self, tmp_path, graph_file):
        path = tmp_path / "s3.jsonl"
        rc = main(["build", str(graph_file), "--scheme", "stretch3",
                   "--eps", "0.3", "--seed", "5", "-o", str(path)])
        assert rc == 0

    def test_missing_params_fail_cleanly(self, tmp_path, graph_file, capsys):
        path = tmp_path / "x.jsonl"
        rc = main(["build", str(graph_file), "--scheme", "tz",
                   "-o", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_query_pairs(self, graph_file, sketch_file, capsys):
        rc = main(["query", str(graph_file), str(sketch_file),
                   "--pairs", "0:31", "5:9"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("0:31 estimate=")

    def test_query_with_exact(self, graph_file, sketch_file, capsys):
        rc = main(["query", str(graph_file), str(sketch_file), "--exact",
                   "--pairs", "0:31"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact=" in out and "stretch=" in out

    def test_bad_pair_syntax(self, graph_file, sketch_file, capsys):
        rc = main(["query", str(graph_file), str(sketch_file),
                   "--pairs", "0-31"])
        assert rc == 2


class TestEval:
    def test_stretch_report(self, graph_file, sketch_file, capsys):
        rc = main(["eval", str(graph_file), str(sketch_file)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["underestimates"] == 0
        assert 1.0 <= report["max_stretch"] <= 3.0  # k=2 bound

    def test_eps_filter(self, graph_file, sketch_file, capsys):
        rc = main(["eval", str(graph_file), str(sketch_file),
                   "--eps", "0.5", "--max-pairs", "100"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["pairs"] <= 100

    def test_mismatched_sketch_set(self, tmp_path, graph_file, sketch_file,
                                   capsys):
        other = tmp_path / "small.edges"
        main(["gen", "--family", "ring", "--n", "5", "-o", str(other)])
        rc = main(["eval", str(other), str(sketch_file)])
        assert rc == 2


class TestBuildJobs:
    def test_parallel_build_matches_serial(self, tmp_path, graph_file):
        serial = tmp_path / "serial.jsonl"
        fanned = tmp_path / "fanned.jsonl"
        assert main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
                     "--seed", "3", "-o", str(serial)]) == 0
        assert main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
                     "--seed", "3", "--jobs", "2", "-o", str(fanned)]) == 0
        assert serial.read_bytes() == fanned.read_bytes()

    def test_jobs_rejected_for_slack_scheme(self, tmp_path, graph_file,
                                            capsys):
        rc = main(["build", str(graph_file), "--scheme", "stretch3",
                   "--eps", "0.3", "--jobs", "2",
                   "-o", str(tmp_path / "x.jsonl")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestServeBench:
    def test_reports_identical_answers(self, sketch_file, capsys):
        rc = main(["serve-bench", str(sketch_file), "--queries", "500",
                   "--batch", "100", "--repeats", "1"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True
        assert report["queries"] == 500 and report["batch"] == 100
        assert report["batched_qps"] > 0

    def test_shards_and_cache_flags(self, sketch_file, capsys):
        rc = main(["serve-bench", str(sketch_file), "--queries", "200",
                   "--repeats", "1", "--shards", "3",
                   "--cache-size", "64"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shards"] == 3 and report["cache_size"] == 64
        assert report["identical"] is True


class TestServeBenchJobsAndScheme:
    def test_jobs_flag_keeps_answers_identical(self, sketch_file, capsys):
        rc = main(["serve-bench", str(sketch_file), "--queries", "200",
                   "--repeats", "1", "--shards", "2", "--jobs", "2"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 2 and report["shards"] == 2
        assert report["identical"] is True

    def test_scheme_assertion_passes_and_fails(self, sketch_file, capsys):
        rc = main(["serve-bench", str(sketch_file), "--queries", "100",
                   "--repeats", "1", "--scheme", "tz"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["scheme"] == "tz"
        rc = main(["serve-bench", str(sketch_file), "--queries", "100",
                   "--repeats", "1", "--scheme", "graceful"])
        assert rc == 2
        assert "not graceful" in capsys.readouterr().err

    def test_slack_sketches_are_served_batched(self, tmp_path, graph_file,
                                               capsys):
        path = tmp_path / "s3.jsonl"
        assert main(["build", str(graph_file), "--scheme", "stretch3",
                     "--eps", "0.3", "--seed", "5", "-o", str(path)]) == 0
        capsys.readouterr()
        rc = main(["serve-bench", str(path), "--queries", "200",
                   "--repeats", "1", "--scheme", "stretch3"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scheme"] == "stretch3"
        assert report["identical"] is True


class TestConnectFlows:
    """`query --connect` / `serve-bench --connect` against a live
    transport endpoint (the `serve` daemon itself is exercised
    end-to-end in tests/test_service_transport.py)."""

    @pytest.fixture()
    def live_server(self, sketch_file):
        from repro.oracle.serialization import load_sketch_set
        from repro.service.transport import OracleServer

        server = OracleServer(load_sketch_set(sketch_file), cache_size=0)
        host, port = server.serve("127.0.0.1:0", block=False)
        try:
            yield f"tcp://{host}:{port}", server
        finally:
            server.close()

    def test_query_connect(self, live_server, sketch_file, capsys):
        spec, server = live_server
        rc = main(["query", "--connect", spec, "--pairs", "0:31", "5:9"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and lines[0].startswith("0:31 estimate=")

    def test_query_connect_rejects_sketch_file_too(self, live_server,
                                                   graph_file, sketch_file,
                                                   capsys):
        spec, _ = live_server
        rc = main(["query", str(graph_file), str(sketch_file),
                   "--connect", spec, "--pairs", "0:1"])
        assert rc == 2
        assert "server owns the index" in capsys.readouterr().err

    def test_query_without_files_or_connect(self, capsys):
        rc = main(["query", "--pairs", "0:1"])
        assert rc == 2
        assert "--connect" in capsys.readouterr().err

    def test_serve_bench_connect(self, live_server, capsys):
        spec, _ = live_server
        rc = main(["serve-bench", "--connect", spec, "--queries", "200",
                   "--batch", "50", "--repeats", "1", "--scheme", "tz"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True
        assert report["transport"] == "tcp" and report["scheme"] == "tz"
        assert report["streamed_qps"] > 0

    def test_serve_bench_connect_scheme_mismatch(self, live_server,
                                                 capsys):
        spec, _ = live_server
        rc = main(["serve-bench", "--connect", spec, "--queries", "50",
                   "--repeats", "1", "--scheme", "graceful"])
        assert rc == 2
        assert "not graceful" in capsys.readouterr().err

    def test_serve_bench_without_source(self, capsys):
        rc = main(["serve-bench"])
        assert rc == 2
        assert "--connect" in capsys.readouterr().err

    def test_serve_bench_clients_needs_connect(self, capsys):
        rc = main(["serve-bench", "--clients", "2", "--queries", "10"])
        assert rc == 2
        assert "--connect" in capsys.readouterr().err

    def test_serve_bench_depth_needs_clients(self, capsys):
        rc = main(["serve-bench", "--connect", "tcp://127.0.0.1:1",
                   "--depth", "2", "--queries", "10"])
        assert rc == 2
        assert "--clients" in capsys.readouterr().err


class TestSchemesCommand:
    def test_json_matrix(self, capsys):
        assert main(["schemes"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["scheme"] for r in rows} == {"tz", "stretch3", "cdg",
                                               "graceful"}
        assert all(r["batch"] for r in rows)  # every scheme serves batches
        assert all(r["serialize"] for r in rows)

    def test_markdown_matrix_matches_registry(self, capsys):
        from repro.oracle.schemes import SCHEMES, schemes_markdown

        assert main(["schemes", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == schemes_markdown()
        for name in SCHEMES:
            assert f"`{name}`" in out


class TestBuildFormatAndMemoryPlane:
    @pytest.fixture()
    def binary_index_file(self, tmp_path, graph_file):
        path = tmp_path / "idx.rpix"
        rc = main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
                   "--seed", "3", "--format", "binary", "--shards", "2",
                   "-o", str(path)])
        assert rc == 0
        return path

    def test_build_binary_matches_jsonl_build(self, sketch_file,
                                              binary_index_file, capsys):
        from repro.oracle.serialization import (is_binary_index,
                                                load_index_binary,
                                                load_sketch_set)
        from repro.service import build_index

        assert is_binary_index(binary_index_file)
        assert not is_binary_index(sketch_file)
        from_cli = load_index_binary(binary_index_file)
        rebuilt = build_index(load_sketch_set(sketch_file), num_shards=2)
        assert from_cli == rebuilt

    @pytest.mark.parametrize("memory", ["heap", "shared", "mmap"])
    def test_serve_bench_memory_modes_on_sketches(self, sketch_file, memory,
                                                  capsys):
        rc = main(["serve-bench", str(sketch_file), "--queries", "150",
                   "--repeats", "1", "--shards", "2", "--jobs", "2",
                   "--memory", memory])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True
        assert report["memory"] == memory
        assert set(report["phases"]) >= {"plan_seconds",
                                         "shard_answer_seconds",
                                         "finish_seconds", "ipc_seconds"}

    @pytest.mark.parametrize("memory", ["heap", "mmap"])
    def test_serve_bench_on_binary_index(self, binary_index_file, memory,
                                         capsys):
        rc = main(["serve-bench", str(binary_index_file), "--queries",
                   "150", "--repeats", "1", "--jobs", "2",
                   "--memory", memory, "--scheme", "tz"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True
        assert report["scheme"] == "tz"
        assert report["shards"] == 2  # baked into the container

    def test_serve_bench_binary_scheme_mismatch(self, binary_index_file,
                                                capsys):
        rc = main(["serve-bench", str(binary_index_file), "--queries",
                   "50", "--repeats", "1", "--scheme", "graceful"])
        assert rc == 2
        assert "not graceful" in capsys.readouterr().err

    def test_build_shards_requires_binary_format(self, tmp_path, graph_file,
                                                 capsys):
        rc = main(["build", str(graph_file), "--scheme", "tz", "--k", "2",
                   "--seed", "3", "--shards", "4",
                   "-o", str(tmp_path / "sk.jsonl")])
        assert rc == 2
        assert "--format binary" in capsys.readouterr().err

    def test_serve_bench_binary_shards_mismatch(self, binary_index_file,
                                                capsys):
        """A binary index bakes its shard layout in; asking for another
        count must fail loudly, not silently serve the baked one."""
        rc = main(["serve-bench", str(binary_index_file), "--queries",
                   "50", "--repeats", "1", "--shards", "8"])
        assert rc == 2
        assert "bakes its shard layout" in capsys.readouterr().err
        rc = main(["serve-bench", str(binary_index_file), "--queries",
                   "50", "--repeats", "1", "--shards", "2"])
        assert rc == 0  # matching the baked count is fine
