"""Seeded randomness helpers (repro.rng)."""

import numpy as np

from repro.rng import derive_seed, ensure_rng, optional_seed, spawn


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5),
                                  ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        kids = spawn(ensure_rng(5), 3)
        draws = [k.random(4).tolist() for k in kids]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_is_reproducible(self):
        a = [k.random(3).tolist() for k in spawn(ensure_rng(9), 4)]
        b = [k.random(3).tolist() for k in spawn(ensure_rng(9), 4)]
        assert a == b

    def test_spawn_count(self):
        assert len(spawn(ensure_rng(1), 10)) == 10


class TestHelpers:
    def test_derive_seed_reproducible(self):
        assert derive_seed(ensure_rng(3)) == derive_seed(ensure_rng(3))

    def test_optional_seed(self):
        assert optional_seed(None, 5) == 5
        assert optional_seed(7, 5) == 7
