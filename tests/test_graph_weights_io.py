"""Weight schemes and edge-list I/O."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    assign_exponential_weights,
    assign_integer_weights,
    assign_unit_weights,
    assign_uniform_weights,
    erdos_renyi,
    read_edgelist,
    write_edgelist,
)


class TestWeightSchemes:
    def test_unit(self, er_weighted):
        g = assign_unit_weights(er_weighted.copy())
        assert all(w == 1.0 for _, _, w in g.edges())

    def test_uniform_in_range(self):
        g = assign_uniform_weights(erdos_renyi(30, seed=1), low=1, high=10,
                                   seed=2)
        ws = [w for _, _, w in g.edges()]
        assert all(1.0 <= w <= 10.0 for w in ws)
        assert all(w == int(w) for w in ws)

    def test_uniform_reproducible(self):
        a = assign_uniform_weights(erdos_renyi(20, seed=1), seed=5)
        b = assign_uniform_weights(erdos_renyi(20, seed=1), seed=5)
        assert a == b

    def test_exponential_positive(self):
        g = assign_exponential_weights(erdos_renyi(30, seed=3), seed=4)
        assert all(w >= 1.0 for _, _, w in g.edges())

    def test_exponential_heavy_tail(self):
        g = assign_exponential_weights(erdos_renyi(60, seed=5), scale=50,
                                       seed=6)
        ws = sorted(w for _, _, w in g.edges())
        assert ws[-1] > 10 * ws[0]

    def test_integer_choices(self):
        g = assign_integer_weights(erdos_renyi(30, seed=7),
                                   choices=(2, 4), seed=8)
        assert set(w for _, _, w in g.edges()) <= {2.0, 4.0}

    def test_returns_same_object_for_chaining(self):
        g = erdos_renyi(10, seed=9)
        assert assign_unit_weights(g) is g


class TestEdgelistIO:
    def test_round_trip(self, tmp_path, er_weighted):
        path = tmp_path / "g.edges"
        write_edgelist(er_weighted, path)
        g2 = read_edgelist(path)
        assert g2 == er_weighted

    def test_header_records_isolated_nodes(self, tmp_path):
        from repro.graphs import Graph

        g = Graph(5, [(0, 1, 1.0)])  # nodes 2..4 isolated
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path).n == 5

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("nodes 5\n0 1 1.0\n")
        with pytest.raises(GraphError, match="header"):
            read_edgelist(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# nodes 3\n0 1\n")
        with pytest.raises(GraphError, match="expected"):
            read_edgelist(path)

    def test_float_weights_preserved(self, tmp_path):
        from repro.graphs import Graph

        g = Graph(2, [(0, 1, 1234.5678)])
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path).weight(0, 1) == 1234.5678
