"""The churn scenario harness (``repro.service.scenario``).

Four claim families:

* **trace model** — every named generator is seeded-deterministic
  (same inputs → byte-identical JSONL), traces round-trip through
  ``save_jsonl`` / ``load_jsonl``, and malformed traces are rejected at
  construction, not at replay;
* **correctness under fire** — every scenario replayed over every local
  transport topology (``inproc://`` and the real-socket ``tcp://``
  sentinel) with the oracle armed finishes with **zero** violations:
  each consumed answer was bit-identical to an epoch the session could
  legally observe, including ``QueryError`` parity while a
  disconnect-heal victim is cut;
* **acceptance topology** — a live ``python -m repro serve`` subprocess
  driven over TCP verifies clean too (the oracle twin is built from the
  same edge-list *file* the daemon reads), and the ``repro scenario``
  CLI runs end to end in-process;
* **policy** — an adaptive-policy replay stays oracle-clean and
  ``compare_policies`` proves static vs adaptive end bitwise identical.

A nightly long-trace run rides the ``slow`` marker.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.graphs import (assign_uniform_weights, erdos_renyi,
                          read_edgelist, write_edgelist)
from repro.service import (SCENARIOS, QueryEvent, Trace, compare_policies,
                           generate_trace, run_named_scenario,
                           run_scenario, served_subprocess)

K = 2  # tz needs k; k=2 keeps the small builds fast
ROUNDS = 5


@pytest.fixture(scope="module")
def churn_graph():
    """Small weighted ER graph — big enough for every generator's
    structure (regions, victims, flappers), small enough that ten
    oracle-armed replays stay in seconds."""
    return assign_uniform_weights(erdos_renyi(20, seed=31), seed=32)


def _dump(trace: Trace, path) -> str:
    trace.save_jsonl(path)
    return path.read_text(encoding="ascii")


# ----------------------------------------------------------------------
# trace model
# ----------------------------------------------------------------------
class TestTraceModel:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_generator_deterministic(self, name, churn_graph, tmp_path):
        t1 = generate_trace(name, churn_graph, seed=5, rounds=6)
        t2 = generate_trace(name, churn_graph, seed=5, rounds=6)
        assert _dump(t1, tmp_path / "a.jsonl") == \
            _dump(t2, tmp_path / "b.jsonl")
        assert t1.name == name
        assert t1.n == churn_graph.n
        assert t1.query_events and all(
            0 <= e.round < t1.rounds for e in t1.events)

    def test_different_seeds_differ(self, churn_graph, tmp_path):
        t1 = generate_trace("steady-mix", churn_graph, seed=1, rounds=6)
        t2 = generate_trace("steady-mix", churn_graph, seed=2, rounds=6)
        assert _dump(t1, tmp_path / "a.jsonl") != \
            _dump(t2, tmp_path / "b.jsonl")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_jsonl_round_trip(self, name, churn_graph, tmp_path):
        t1 = generate_trace(name, churn_graph, seed=9, rounds=6)
        text = _dump(t1, tmp_path / "trace.jsonl")
        t2 = Trace.load_jsonl(tmp_path / "trace.jsonl")
        assert (t2.name, t2.n, t2.rounds, t2.seed, t2.meta) == \
            (t1.name, t1.n, t1.rounds, t1.seed, t1.meta)
        assert len(t2.events) == len(t1.events)
        assert _dump(t2, tmp_path / "again.jsonl") == text

    def test_unknown_scenario_rejected(self, churn_graph):
        with pytest.raises(ConfigError, match="unknown scenario"):
            generate_trace("thundering-herd", churn_graph)

    def test_trace_validation(self):
        q = QueryEvent(0, ((0, 1),))
        with pytest.raises(ConfigError, match=">= 1 round"):
            Trace("t", 4, 0, 0, [q])
        with pytest.raises(ConfigError, match="outside"):
            Trace("t", 4, 2, 0, [QueryEvent(5, ((0, 1),))])
        with pytest.raises(ConfigError, match="empty query"):
            Trace("t", 4, 2, 0, [QueryEvent(0, ())])
        with pytest.raises(ConfigError, match="outside the 4-node"):
            Trace("t", 4, 2, 0, [QueryEvent(0, ((0, 9),))])

    def test_by_round_keeps_event_ids(self, churn_graph):
        t = generate_trace("steady-mix", churn_graph, seed=3, rounds=6)
        seen = [idx for r in sorted(t.by_round())
                for idx, _ in t.by_round()[r]]
        assert sorted(seen) == list(range(len(t.events)))
        for r, pairs in t.by_round().items():
            assert all(ev.round == r for _, ev in pairs)

    def test_load_rejects_non_trace_file(self, tmp_path):
        p = tmp_path / "bogus.jsonl"
        p.write_text('{"kind":"sketches"}\n', encoding="ascii")
        with pytest.raises(ConfigError, match="not a trace file"):
            Trace.load_jsonl(p)


# ----------------------------------------------------------------------
# correctness under fire: every scenario x every local topology
# ----------------------------------------------------------------------
class TestScenarioRuns:
    @pytest.mark.parametrize("endpoint", ["inproc://", "tcp://"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_oracle_clean(self, name, endpoint, churn_graph):
        result = run_named_scenario(name, churn_graph, seed=3,
                                    rounds=ROUNDS, endpoint=endpoint,
                                    k=K)
        assert result.oracle_report is not None
        assert result.ok, (name, endpoint, result.violations[:3])
        assert result.oracle_report["checked"] > 0
        s = result.summary()
        assert s["queries"]["records"] >= len(result.trace.query_events)
        assert s["hotswap"]["applies"] == len(result.trace.churn_events)
        assert s["staleness"]["results"] > 0

    def test_disconnect_heal_errors_are_legal(self, churn_graph):
        """While a victim is cut, queries touching it raise — the
        oracle proves the errors match some legal epoch bit-for-bit."""
        result = run_named_scenario("disconnect-heal", churn_graph,
                                    seed=3, rounds=8, k=K)
        assert result.ok, result.violations[:3]
        assert any(r.error is not None for r in result.queries)

    def test_adaptive_policy_stays_clean(self, churn_graph):
        result = run_named_scenario("weight-flap", churn_graph, seed=4,
                                    rounds=ROUNDS, policy="adaptive",
                                    endpoint="tcp://", k=K)
        assert result.ok, result.violations[:3]
        assert result.applies
        assert result.applies[-1].report.policy == "adaptive"

    def test_compare_policies_bitwise_identical(self, churn_graph):
        trace = generate_trace("rolling-churn", churn_graph, seed=6,
                               rounds=ROUNDS)
        cmp = compare_policies(churn_graph, trace, scheme="tz", seed=6,
                               k=K)
        assert set(cmp["policies"]) == {"static", "adaptive"}
        assert cmp["bitwise_identical"]
        adaptive = cmp["policies"]["adaptive"]
        assert adaptive["describe"]["decisions"]
        assert adaptive["final_epoch"] == \
            cmp["policies"]["static"]["final_epoch"]

    def test_trace_size_mismatch_rejected(self, churn_graph):
        other = erdos_renyi(8, seed=1)
        trace = generate_trace("steady-mix", other, seed=0, rounds=4)
        with pytest.raises(ConfigError, match="n=8"):
            run_named_scenario("steady-mix", churn_graph, trace=trace,
                               k=K)

    def test_endpoint_source_rules(self, churn_graph):
        trace = generate_trace("steady-mix", churn_graph, seed=0,
                               rounds=4)
        with pytest.raises(ConfigError, match="pass source="):
            run_scenario(trace, "tcp://")  # sentinel needs a source
        with pytest.raises(ConfigError, match="needs a source"):
            run_scenario(trace, "inproc://")

    @pytest.mark.slow
    def test_long_trace_nightly(self, er_weighted):
        """Nightly: a long steady-state trace over real sockets with
        checkpoints on — the endurance version of the smoke runs."""
        result = run_named_scenario("steady-mix", er_weighted, seed=11,
                                    rounds=24, endpoint="tcp://",
                                    policy="adaptive", query_threads=3,
                                    k=K)
        assert result.ok, result.violations[:3]
        assert result.oracle_report["checkpoints"] > 0


# ----------------------------------------------------------------------
# acceptance topology: a live serve subprocess, then the CLI
# ----------------------------------------------------------------------
class TestServedSubprocess:
    def test_spawned_daemon_zero_violations(self, churn_graph, tmp_path):
        gp = tmp_path / "graph.edges"
        write_edgelist(churn_graph, gp)
        disk = read_edgelist(gp)  # %.12g — the file is the ground truth
        with served_subprocess(gp, scheme="tz", seed=0, k=K,
                               policy="adaptive") as addr:
            assert addr.startswith("tcp://")
            result = run_named_scenario("flash-crowd", disk, seed=0,
                                        rounds=ROUNDS, endpoint=addr,
                                        k=K)
        assert result.ok, result.violations[:3]
        assert result.oracle_report["checked"] > 0


class TestScenarioCLI:
    @pytest.fixture()
    def graph_path(self, churn_graph, tmp_path):
        gp = tmp_path / "graph.edges"
        write_edgelist(churn_graph, gp)
        return gp

    def test_generate_save_and_replay(self, graph_path, tmp_path,
                                      capsys):
        tp = tmp_path / "trace.jsonl"
        rc = cli_main(["scenario", str(graph_path), "--trace",
                       "steady-mix", "--rounds", "4", "--k", str(K),
                       "--save-trace", str(tp)])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["oracle"]["violations"] == []
        assert payload["trace"]["name"] == "steady-mix"
        assert tp.exists()

        rc = cli_main(["scenario", str(graph_path), "--load-trace",
                       str(tp), "--k", str(K)])
        assert rc == 0
        replay = json.loads(capsys.readouterr().out)
        assert replay["oracle"]["violations"] == []
        assert replay["trace"]["events"] == payload["trace"]["events"]

    def test_requires_exactly_one_trace_source(self, graph_path,
                                               capsys):
        rc = cli_main(["scenario", str(graph_path), "--k", str(K)])
        assert rc == 2
        assert "exactly one trace source" in capsys.readouterr().err
        rc = cli_main(["scenario", str(graph_path), "--trace",
                       "steady-mix", "--load-trace", "x.jsonl",
                       "--k", str(K)])
        assert rc == 2


# ----------------------------------------------------------------------
# oracle sharpness: a wrong answer or an illegal epoch must be flagged
# ----------------------------------------------------------------------
class TestOracleSharpness:
    def test_oracle_is_single_use(self, churn_graph):
        from repro.service import ScenarioOracle

        trace = generate_trace("steady-mix", churn_graph, seed=2,
                               rounds=4)
        oracle = ScenarioOracle(churn_graph, seed=2, k=K)
        result = run_scenario(trace, "inproc://",
                              source=_source(churn_graph, seed=2),
                              oracle=oracle)
        assert result.ok
        with pytest.raises(ConfigError, match="already verified"):
            oracle.verify(trace, result)

    def test_oracle_flags_tampered_answer(self, churn_graph):
        from repro.service import ScenarioOracle

        trace = generate_trace("steady-mix", churn_graph, seed=2,
                               rounds=4)
        result = run_scenario(trace, "inproc://",
                              source=_source(churn_graph, seed=2))
        victim = next(r for r in result.queries if r.error is None)
        victim.answers[0] += 1.0  # corrupt one consumed float
        report = ScenarioOracle(churn_graph, seed=2, k=K).verify(
            trace, result)
        kinds = {v["kind"] for v in report["violations"]}
        assert "bitwise-mismatch" in kinds

    def test_oracle_flags_illegal_epoch(self, churn_graph):
        from repro.service import ScenarioOracle

        trace = generate_trace("steady-mix", churn_graph, seed=2,
                               rounds=4)
        result = run_scenario(trace, "inproc://",
                              source=_source(churn_graph, seed=2))
        victim = next(r for r in result.queries if r.error is None)
        victim.epoch_observed = 999  # an epoch that never existed
        report = ScenarioOracle(churn_graph, seed=2, k=K).verify(
            trace, result)
        kinds = {v["kind"] for v in report["violations"]}
        assert "unknown-epoch" in kinds


def _source(graph, *, seed):
    from repro.service import UpdateableIndex

    return UpdateableIndex(graph, "tz", seed=seed, k=K)
