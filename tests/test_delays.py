"""Bounded-delay asynchrony (repro.congest.delays).

The tests demonstrate the module docstring's three claims: BF-family
protocols are delay-oblivious in their results; oracle-synchronized phase
protocols stay correct; and the Section 3.3 ECHO detector is causally
correct under delays once its (only) round-counted component — the
election horizon — is scaled.
"""

import numpy as np
import pytest

from repro.algorithms.bellman_ford import BellmanFordProgram
from repro.algorithms.supersource import SuperSourceBFProgram
from repro.congest.delays import DelayedSimulator
from repro.errors import ConfigError
from repro.graphs import apsp
from repro.tz import build_tz_sketches_centralized, sample_hierarchy
from repro.tz.distributed import TZEchoProgram, TZOracleProgram


class TestMechanics:
    def test_validation(self, er_weighted):
        with pytest.raises(ConfigError):
            DelayedSimulator(er_weighted, lambda u: BellmanFordProgram(u, 0),
                             max_delay=0)

    def test_delay_one_is_synchronous(self, er_weighted):
        from repro.congest import Simulator

        sync = Simulator(er_weighted,
                         lambda u: BellmanFordProgram(u, 0), seed=1).run()
        delayed = DelayedSimulator(er_weighted,
                                   lambda u: BellmanFordProgram(u, 0),
                                   seed=1, max_delay=1, delay_seed=2).run()
        assert [p.result()[0] for p in sync.programs] == \
            [p.result()[0] for p in delayed.programs]
        assert delayed.metrics.rounds == sync.metrics.rounds

    def test_fifo_preserved_per_edge(self, small_ring):
        # a chatty protocol where reordering would corrupt sequence numbers
        from repro.congest.node import NodeProgram

        class Sequencer(NodeProgram):
            def __init__(self, node):
                self.node = node
                self.to_send = list(range(10)) if node == 0 else []
                self.seen = []

            def on_start(self, ctx):
                self._pump(ctx)

            def _pump(self, ctx):
                if self.to_send:
                    ctx.send(1, ("seq", self.to_send.pop(0)))

            def on_round(self, ctx, inbox):
                for payload in inbox.values():
                    if payload[0] == "seq" and self.node == 1:
                        self.seen.append(payload[1])
                self._pump(ctx)

            def has_pending(self):
                return bool(self.to_send)

        res = DelayedSimulator(small_ring, Sequencer, seed=3, max_delay=4,
                               delay_seed=4).run()
        assert res.programs[1].seen == list(range(10))


class TestDelayObliviousProtocols:
    def test_bellman_ford_exact(self, er_weighted):
        d = apsp(er_weighted)
        res = DelayedSimulator(er_weighted,
                               lambda u: BellmanFordProgram(u, 0),
                               seed=5, max_delay=4, delay_seed=6).run()
        assert np.allclose([p.result()[0] for p in res.programs], d[0])

    def test_supersource_exact(self, er_weighted):
        members = frozenset({1, 9, 20})
        d = apsp(er_weighted)
        res = DelayedSimulator(
            er_weighted, lambda u: SuperSourceBFProgram(u, members),
            seed=7, max_delay=3, delay_seed=8).run()
        want = d[:, sorted(members)].min(axis=1)
        assert np.allclose([p.result()[0] for p in res.programs], want)

    def test_rounds_inflate_at_most_linearly(self, small_grid):
        from repro.congest import Simulator

        base = Simulator(small_grid,
                         lambda u: BellmanFordProgram(u, 0), seed=9).run()
        slow = DelayedSimulator(small_grid,
                                lambda u: BellmanFordProgram(u, 0),
                                seed=9, max_delay=5, delay_seed=10).run()
        assert slow.metrics.rounds <= 5 * base.metrics.rounds + 5


class TestPhaseProtocolsUnderDelay:
    def test_oracle_tz_correct(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 2, seed=11)
        cs, _ = build_tz_sketches_centralized(er_weighted, hierarchy=h)
        sim = DelayedSimulator(
            er_weighted,
            lambda u: TZOracleProgram(u, 2, int(h.level[u])),
            seed=12, max_delay=3, delay_seed=13)
        res = sim.run()
        for a, p in zip(cs, res.programs):
            b = p.sketch()
            assert a.pivots == b.pivots and a.bunch == b.bunch

    def test_echo_tz_correct_with_scaled_horizon(self, small_grid):
        # the election is the ONLY round-counted component: scale its
        # horizon by max_delay and the whole Section 3.3 machinery runs
        # correctly asynchronously
        g = small_grid
        max_delay = 3
        h = sample_hierarchy(g.n, 2, seed=14)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        sim = DelayedSimulator(
            g,
            lambda u: TZEchoProgram(u, g.n, 2, int(h.level[u]),
                                    horizon=max_delay * (g.n + 2),
                                    settle=max_delay),
            seed=15, max_delay=max_delay, delay_seed=16)
        res = sim.run()
        for a, p in zip(cs, res.programs):
            b = p.sketch()
            assert a.pivots == b.pivots and a.bunch == b.bunch
