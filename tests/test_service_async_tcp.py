"""The multiplexed TCP plane (protocol v2) and its bug-sweep fixes.

Five claim families:

* **pipelining** — a tcp ``dist_stream`` keeps ≥ 2 requests in flight
  (``max_inflight``) and hides submit time behind the wire
  (``overlap_seconds > 0``, a timing claim gated by the shared
  ``timing_gate`` fixture) while staying bit-identical to per-batch
  ``dist_many`` — the regression guard for the v1 bug where streaming
  silently degraded to sequential round-trips;
* **session robustness** — the connect timeout is cleared after the
  hello handshake (a slow large-batch reply must never desync the
  stream), a mid-frame failure marks the transport dead and every later
  request fails fast with :class:`ConnectionError`, and a protocol
  version mismatch is rejected at connect time;
* **version skew** — :meth:`UpdateReport.from_wire` tolerates unknown
  and missing report keys (a newer server must not crash an older
  client's ``apply_updates``);
* **clean shutdown** — :meth:`OracleServer.close` joins the IO loop and
  handler pool; no ``oracle-io`` / ``oracle-handler`` thread survives;
* **concurrency** — N client threads mixing ``dist_many`` /
  ``dist_stream`` / ``apply_updates`` against one server get
  bit-identical answers for the epoch that served each batch (computed
  from an inline twin), with distinct per-thread workloads so any
  cross-request reply mixup under multiplexing shows up as a wrong
  answer.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro import build_sketches
from repro.errors import ConfigError
from repro.graphs import Graph, assign_uniform_weights, erdos_renyi
from repro.service import (OracleServer, UpdateableIndex, UpdateReport,
                           connect, sample_query_pairs,
                           sample_weight_changes)
from repro.service.transport import PROTOCOL_VERSION, _send_frame


@pytest.fixture(scope="module")
def graph() -> Graph:
    return assign_uniform_weights(erdos_renyi(24, seed=11), seed=12)


@pytest.fixture(scope="module")
def built(graph):
    return build_sketches(graph, scheme="stretch3", seed=7, eps=0.4)


def _serve(source, **kw):
    server = OracleServer(source, cache_size=0, **kw)
    host, port = server.serve("127.0.0.1:0", block=False)
    return server, f"tcp://{host}:{port}"


# ----------------------------------------------------------------------
# pipelining (the dist_stream regression guard)
# ----------------------------------------------------------------------
class TestPipelining:
    def test_stream_keeps_requests_in_flight(self, graph, built):
        pairs = sample_query_pairs(graph.n, 240, seed=3)
        chunks = [pairs[lo:lo + 30] for lo in range(0, 240, 30)]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                want = [client.dist_many(c) for c in chunks]
                client.pipeline_stats(reset=True)
                got = list(client.dist_stream(chunks))
                stats = client.pipeline_stats()
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g.tolist() == w.tolist()  # exact floats, in order
            assert stats["requests"] == len(chunks)
            assert len(stats["latencies"]) == len(chunks)
        finally:
            server.close()

    def test_stream_overlaps_requests(self, graph, built, timing_gate):
        """``max_inflight >= 2`` / ``overlap_seconds > 0`` are wall-clock
        scheduling claims — gated so CI/1-CPU runners self-skip."""
        timing_gate("dist_stream overlap")
        pairs = sample_query_pairs(graph.n, 240, seed=3)
        chunks = [pairs[lo:lo + 30] for lo in range(0, 240, 30)]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                list(client.dist_stream(chunks))
                stats = client.pipeline_stats()
            assert stats["max_inflight"] >= 2
            assert stats["overlap_seconds"] > 0.0
        finally:
            server.close()

    def test_depth_one_disables_overlap(self, graph, built):
        pairs = sample_query_pairs(graph.n, 60, seed=4)
        chunks = [pairs[lo:lo + 20] for lo in range(0, 60, 20)]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr, pipeline_depth=1) as client:
                list(client.dist_stream(chunks))
                stats = client.pipeline_stats()
            assert stats["max_inflight"] == 1
            assert stats["overlap_seconds"] == 0.0
        finally:
            server.close()

    def test_empty_batches_keep_order(self, graph, built):
        pairs = sample_query_pairs(graph.n, 40, seed=5)
        chunks = [pairs[:20], pairs[:0], pairs[20:]]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                got = list(client.dist_stream(chunks))
                assert [len(g) for g in got] == [20, 0, 20]
                want = client.dist_many(pairs)
            assert np.concatenate(got).tolist() == want.tolist()
        finally:
            server.close()

    def test_abandoned_stream_leaves_session_usable(self, graph, built):
        pairs = sample_query_pairs(graph.n, 120, seed=6)
        chunks = [pairs[lo:lo + 20] for lo in range(0, 120, 20)]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                stream = client.dist_stream(chunks)
                next(stream)   # several replies still in flight
                stream.close()  # abandon mid-stream
                # the finally-drain realigned the session: the next
                # request gets its own reply, not a stale one
                got = client.dist_many(pairs[:10])
                assert got.tolist() == client.dist_many(
                    pairs[:10]).tolist()
        finally:
            server.close()

    def test_local_transports_reject_pipeline_depth(self, built):
        with pytest.raises(ConfigError, match="pipeline_depth"):
            connect("inproc://", built, pipeline_depth=2)

    def test_local_sessions_have_no_pipeline_stats(self, built):
        with connect("inproc://", built) as client:
            assert client.pipeline_stats() is None

    def test_large_frames_drain_under_backpressure(self, graph, built):
        # replies bigger than the server's 1 MiB write high-water mark
        # read-pause the connection with the rest of the window parked
        # in its inbuf, while the client's window fill is mid-send of
        # the next multi-MiB request.  Both ends must keep making
        # progress: the server resumes parked frames once its write
        # drains, and the client drains ready replies while its own
        # send is blocked — either one missing deadlocks this stream.
        batch, batches = 200_000, 5
        rng = np.random.default_rng(13)
        pairs = rng.integers(0, graph.n, size=(batch * batches, 2))
        chunks = [pairs[lo:lo + batch]
                  for lo in range(0, batch * batches, batch)]
        server, addr = _serve(built, jobs=1)
        done: list = []

        def run() -> None:
            with connect(addr) as client:
                want = client.dist_many(chunks[0])
                got = list(client.dist_stream(chunks))
                assert [len(g) for g in got] == [batch] * batches
                assert got[0].tolist() == want.tolist()
                done.append(True)

        worker = threading.Thread(target=run, daemon=True)
        try:
            worker.start()
            worker.join(timeout=120.0)
            assert done, "large-frame pipelined stream deadlocked"
        finally:
            server.close()


# ----------------------------------------------------------------------
# pipeline stats and epoch pinning (the introspection surface)
# ----------------------------------------------------------------------
class TestStatsAndPinning:
    def test_empty_stream_records_nothing(self, built):
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                client.pipeline_stats(reset=True)
                assert list(client.dist_stream([])) == []
                stats = client.pipeline_stats()
            assert stats["requests"] == 0
            assert stats["max_inflight"] == 0
            assert stats["overlap_seconds"] == 0.0
            assert stats["latencies"] == []
        finally:
            server.close()

    def test_single_batch_stream(self, graph, built):
        pairs = sample_query_pairs(graph.n, 15, seed=14)
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                want = client.dist_many(pairs)
                client.pipeline_stats(reset=True)
                got = list(client.dist_stream([pairs]))
                stats = client.pipeline_stats()
            assert len(got) == 1
            assert got[0].tolist() == want.tolist()
            # one request can never overlap itself
            assert stats["requests"] == 1
            assert stats["max_inflight"] == 1
            assert len(stats["latencies"]) == 1
        finally:
            server.close()

    def test_last_result_epoch_pins_per_batch(self, graph):
        """``epoch`` only moves forward; ``last_result_epoch`` is the
        per-batch pin and tracks what actually served each answer —
        across interleaved ``apply_updates`` calls on the same
        session."""
        upd = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
        server, addr = _serve(upd, jobs=1)
        try:
            with connect(addr) as client:
                pairs = sample_query_pairs(graph.n, 12, seed=15)
                client.dist_many(pairs)
                e0 = client.last_result_epoch
                assert e0 == client.epoch
                report = client.apply_updates(
                    sample_weight_changes(graph, 3, seed=44,
                                          low=0.3, high=0.8))
                assert report.epoch > e0
                # the pin still names the pre-apply serve until a new
                # result is consumed
                assert client.last_result_epoch == e0
                client.dist_many(pairs)
                assert client.last_result_epoch == report.epoch
                assert client.epoch == report.epoch
        finally:
            server.close()

    def test_local_transport_pins_too(self, graph):
        upd = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
        with connect("inproc://", upd) as client:
            pairs = sample_query_pairs(graph.n, 12, seed=16)
            client.dist_many(pairs)
            e0 = client.last_result_epoch
            report = client.apply_updates(
                sample_weight_changes(graph, 3, seed=45,
                                      low=0.3, high=0.8))
            client.dist_many(pairs)
            assert client.last_result_epoch == report.epoch > e0

    def test_staleness_stats_surface_and_reset(self, graph, built):
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                pairs = sample_query_pairs(graph.n, 10, seed=17)
                client.dist_many(pairs)
                client.dist_many(pairs)
                stats = client.staleness_stats()
                assert stats["results"] == 2
                assert stats["stale_results"] == 0  # no churn here
                stats = client.staleness_stats(reset=True)
                assert stats["results"] == 2
                assert client.staleness_stats()["results"] == 0
        finally:
            server.close()

    def test_abandoned_stream_drain_keeps_stats_consistent(
            self, graph, built):
        """Stats for an abandoned stream count the submitted window —
        the drain consumes the in-flight replies without corrupting the
        next request's accounting."""
        pairs = sample_query_pairs(graph.n, 120, seed=18)
        chunks = [pairs[lo:lo + 20] for lo in range(0, 120, 20)]
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr) as client:
                client.pipeline_stats(reset=True)
                stream = client.dist_stream(chunks)
                next(stream)
                stream.close()
                submitted = client.pipeline_stats(reset=True)["requests"]
                assert 1 <= submitted <= len(chunks)
                # dist_many is not pipelined: the fresh window stays
                # empty, and the drained session answers correctly
                got = client.dist_many(chunks[0])
                again = client.dist_many(chunks[0])
                stats = client.pipeline_stats()
            assert got.tolist() == again.tolist()
            assert stats["requests"] == 0
        finally:
            server.close()


# ----------------------------------------------------------------------
# session robustness
# ----------------------------------------------------------------------
class TestSessionRobustness:
    def test_connect_timeout_cleared_after_hello(self, built):
        server, addr = _serve(built, jobs=1)
        try:
            with connect(addr, timeout=5.0) as client:
                assert client._transport._sock.gettimeout() is None
        finally:
            server.close()

    def test_dead_after_server_gone(self, graph, built):
        server, addr = _serve(built, jobs=1)
        client = connect(addr)
        try:
            pairs = sample_query_pairs(graph.n, 10, seed=8)
            client.dist_many(pairs)
            server.close()
            with pytest.raises(ConnectionError):
                client.dist_many(pairs)
            # dead, not desynced: every later request fails fast with
            # the recorded cause, no hang, no garbage read
            with pytest.raises(ConnectionError, match="dead"):
                client.dist_many(pairs)
            with pytest.raises(ConnectionError, match="dead"):
                client.stats()
        finally:
            client.close()
            server.close()

    def test_version_mismatch_rejected(self):
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]

        def impostor():
            sock, _ = listener.accept()
            with sock:
                _send_frame(sock, {
                    "kind": "hello", "v": PROTOCOL_VERSION + 1, "n": 1,
                    "scheme": None, "epoch": 0, "shards": 1,
                    "updateable": False})
                time.sleep(0.2)

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            with pytest.raises(ConfigError, match="version mismatch"):
                connect(f"tcp://{host}:{port}", timeout=5.0)
        finally:
            listener.close()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# version skew (tolerant report construction)
# ----------------------------------------------------------------------
class TestReportVersionSkew:
    def test_unknown_keys_ignored(self):
        report = UpdateReport.from_wire({
            "mode": "repair", "epoch": 3, "changes": 2, "dirty": 1,
            "touched": 4, "n": 24, "dirty_fraction": 0.04,
            "seconds": {"repair": 0.1},
            "novel_field": "from-the-future", "another": [1, 2]})
        assert report.mode == "repair" and report.epoch == 3
        assert report.seconds == {"repair": 0.1}

    def test_missing_keys_defaulted(self):
        report = UpdateReport.from_wire({"epoch": 7})
        assert report.epoch == 7
        assert report.mode == "unknown" and report.changes == 0
        assert report.seconds == {}

    def test_wire_roundtrip_is_lossless(self):
        report = UpdateReport(mode="rebuild", epoch=2, changes=5, dirty=3,
                              touched=9, n=24, dirty_fraction=0.375,
                              seconds={"rebuild": 1.0})
        assert UpdateReport.from_wire(report.as_dict()) == report


# ----------------------------------------------------------------------
# clean shutdown
# ----------------------------------------------------------------------
class TestCleanShutdown:
    @staticmethod
    def _serving_threads():
        return [t for t in threading.enumerate()
                if t.name.startswith(("oracle-io", "oracle-handler"))]

    def test_close_joins_serving_threads(self, graph, built):
        server, addr = _serve(built, jobs=1)
        with connect(addr) as client:
            client.dist_many(sample_query_pairs(graph.n, 10, seed=9))
            assert self._serving_threads()  # the loop is alive mid-serve
            server.close()
        for _ in range(100):  # pool threads exit within the join bound
            if not self._serving_threads():
                break
            time.sleep(0.05)
        assert self._serving_threads() == []

    def test_close_is_idempotent(self, built):
        server, _ = _serve(built, jobs=1)
        server.close()
        server.close()


# ----------------------------------------------------------------------
# concurrent sessions (the multiplexing acceptance test)
# ----------------------------------------------------------------------
class TestConcurrentSessions:
    def test_mixed_traffic_stays_bit_identical(self, graph):
        readers, rounds, batches = 4, 6, 3
        change_batches = [
            sample_weight_changes(graph, 3, seed=100 + b, low=0.3, high=0.8)
            for b in range(batches)]
        # the inline twin maps every epoch the server can serve to its
        # reference store (UpdateableIndex is deterministic in
        # (graph, seed), so twin stores == served stores, bit for bit)
        twin = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
        stores = {0: twin.index}
        for changes in change_batches:
            stores[twin.apply(changes).epoch] = twin.index

        upd = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
        server, addr = _serve(upd, jobs=1)
        errors: list = []
        start = threading.Barrier(readers + 1)

        def reader(rid: int) -> None:
            try:
                with connect(addr) as client:
                    # a distinct workload per thread: a reply delivered
                    # to the wrong request cannot produce right answers
                    pairs = sample_query_pairs(graph.n, 90,
                                               seed=1000 + rid)
                    chunks = [pairs[lo:lo + 30]
                              for lo in range(0, 90, 30)]
                    expect = {e: s.estimate_many(pairs[:, 0], pairs[:, 1])
                              for e, s in stores.items()}
                    start.wait()
                    for r in range(rounds):
                        if r % 2 == 0:
                            got = client.dist_many(pairs)
                            # pinned by the reply (client.epoch itself
                            # only moves forward and may already name a
                            # newer pushed epoch)
                            epoch = client.last_result_epoch
                            assert got.tolist() == \
                                expect[epoch].tolist(), (rid, r, epoch)
                        else:
                            out, lo = [], 0
                            for ans in client.dist_stream(chunks):
                                # each pipelined batch pins its own
                                # epoch — last_result_epoch names it
                                epoch = client.last_result_epoch
                                want = expect[epoch][lo:lo + len(ans)]
                                assert ans.tolist() == want.tolist(), \
                                    (rid, r, epoch)
                                out.append(ans)
                                lo += len(ans)
                            assert lo == len(pairs)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((rid, exc))
                start.abort()

        def writer() -> None:
            try:
                with connect(addr) as client:
                    start.wait()
                    for changes in change_batches:
                        time.sleep(0.02)
                        report = client.apply_updates(changes)
                        assert report.epoch in stores
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(("writer", exc))
                start.abort()

        threads = [threading.Thread(target=reader, args=(i,), daemon=True)
                   for i in range(readers)]
        threads.append(threading.Thread(target=writer, daemon=True))
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors, errors
            assert all(not t.is_alive() for t in threads)
        finally:
            server.close()

    def test_many_sessions_one_handler_pool(self, graph, built):
        # more sessions than handler threads: the event loop multiplexes
        # them all, and every session gets its own right answers
        server, addr = _serve(built, jobs=1)
        sessions = 6
        pairs = sample_query_pairs(graph.n, 50, seed=21)
        errors: list = []

        def hammer(cid: int) -> None:
            try:
                with connect(addr) as client:
                    mine = sample_query_pairs(graph.n, 50, seed=21 + cid)
                    want = None
                    for _ in range(5):
                        got = client.dist_many(mine)
                        if want is None:
                            want = got
                        assert got.tolist() == want.tolist(), cid
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((cid, exc))

        threads = [threading.Thread(target=hammer, args=(i,), daemon=True)
                   for i in range(sessions)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not errors, errors
            with connect(addr) as client:
                assert client.dist_many(pairs).shape == (50,)
        finally:
            server.close()
