"""Degenerate and boundary instances across the whole stack.

Tiny graphs (n = 1, 2), extreme parameters (k larger than useful, eps at
the boundaries), and cross-mode runs on pathological topologies — the
places where off-by-one phase logic or empty-set handling would hide.
"""


import pytest

from repro import build_sketches
from repro.errors import ConfigError
from repro.graphs import Graph, apsp, complete_graph, path_graph, star_path
from repro.tz import (
    build_tz_sketches_centralized,
    build_tz_sketches_distributed,
    estimate_distance,
    sample_hierarchy,
)


class TestTinyGraphs:
    def test_two_nodes_all_sync_modes(self):
        g = Graph(2, [(0, 1, 3.0)])
        h = sample_hierarchy(2, 2, seed=0)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        for sync, kw in (("oracle", {}), ("echo", {}),
                         ("known_smax", {"S": 1})):
            res = build_tz_sketches_distributed(g, hierarchy=h, sync=sync,
                                                seed=1, **kw)
            for a, b in zip(cs, res.sketches):
                assert a.pivots == b.pivots and a.bunch == b.bunch
            assert estimate_distance(res.sketches[0], res.sketches[1]) == 3.0

    def test_single_node_oracle(self):
        g = Graph(1)
        res = build_tz_sketches_distributed(g, k=1, seed=2)
        assert res.sketches[0].bunch == {0: (0.0, 0)}
        assert res.metrics.messages == 0

    def test_single_node_echo(self):
        g = Graph(1)
        res = build_tz_sketches_distributed(g, k=1, sync="echo", seed=3)
        assert res.sketches[0].bunch == {0: (0.0, 0)}

    def test_two_node_slack_schemes(self):
        g = Graph(2, [(0, 1, 2.0)])
        for scheme, params in [("stretch3", {"eps": 0.5}),
                               ("cdg", {"eps": 0.5, "k": 1}),
                               ("graceful", {})]:
            built = build_sketches(g, scheme=scheme, seed=4, **params)
            assert built.query(0, 1) >= 2.0 - 1e-9


class TestExtremeParameters:
    def test_k_exceeding_log_n(self, er_unit):
        # k = 8 on n = 40: most levels will be empty of sources; phases
        # must still advance (the empty-phase quiescence path)
        res = build_tz_sketches_distributed(er_unit, k=8, seed=5)
        d = apsp(er_unit)
        for u in range(0, er_unit.n, 7):
            for v in range(u + 1, er_unit.n, 5):
                est = estimate_distance(res.sketches[u], res.sketches[v])
                assert d[u, v] - 1e-9 <= est <= 15 * d[u, v] + 1e-9

    def test_eps_one(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=1.0, seed=6)
        assert built.query(0, 1) >= 0

    def test_eps_tiny_makes_net_everything(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=1e-6, seed=7)
        net = built.extras["net"]
        assert net.size() == er_unit.n
        # with the full net, every query is exact
        d = apsp(er_unit)
        assert built.query(0, 30) == pytest.approx(d[0, 30])

    def test_eps_out_of_range(self, er_unit):
        with pytest.raises(ConfigError):
            build_sketches(er_unit, scheme="stretch3", eps=0.0)


class TestPathologicalTopologies:
    def test_complete_graph_tz(self):
        g = complete_graph(12)
        h = sample_hierarchy(12, 2, seed=8)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                            seed=9)
        for a, b in zip(cs, res.sketches):
            assert a.bunch == b.bunch

    def test_path_graph_tz_echo(self):
        g = path_graph(14)
        h = sample_hierarchy(14, 3, seed=10)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                            seed=11)
        for a, b in zip(cs, res.sketches):
            assert a.pivots == b.pivots and a.bunch == b.bunch

    def test_star_path_heavy_hub(self):
        g = star_path(16)
        h = sample_hierarchy(g.n, 2, seed=12)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        res = build_tz_sketches_distributed(g, hierarchy=h, seed=13)
        for a, b in zip(cs, res.sketches):
            assert a.bunch == b.bunch

    def test_parallel_shortest_paths_tie_breaking(self):
        # two equal-weight disjoint paths 0->3: ties everywhere
        g = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        h = sample_hierarchy(4, 2, seed=14)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        for sync in ("oracle", "echo"):
            res = build_tz_sketches_distributed(g, hierarchy=h, sync=sync,
                                                seed=15)
            for a, b in zip(cs, res.sketches):
                assert a.pivots == b.pivots and a.bunch == b.bunch


class TestDistributedSlackSyncModes:
    def test_cdg_echo_matches_centralized(self, er_unit):
        from repro.slack.cdg import (build_cdg_centralized,
                                     build_cdg_distributed)
        from repro.slack.density_net import sample_density_net
        from repro.slack.cdg import cdg_sampling_probability

        net = sample_density_net(er_unit.n, 0.4, seed=16)
        h = sample_hierarchy(
            er_unit.n, 2,
            q=cdg_sampling_probability(er_unit.n, 0.4, 2),
            universe=net.members, seed=17)
        cs, _, _ = build_cdg_centralized(er_unit, 0.4, 2, net=net,
                                         hierarchy=h)
        ds, _, _, _ = build_cdg_distributed(er_unit, 0.4, 2, net=net,
                                            hierarchy=h, sync="echo",
                                            seed=18)
        for a, b in zip(cs, ds):
            assert a.gateway == b.gateway
            assert a.label.bunch == b.label.bunch

    @pytest.mark.slow
    def test_graceful_known_smax(self, er_unit):
        from repro.graphs import shortest_path_diameter
        from repro.slack.graceful import build_graceful_distributed

        S = shortest_path_diameter(er_unit)
        sketches, schedule, metrics = build_graceful_distributed(
            er_unit, seed=19, sync="known_smax", S=S)
        d = apsp(er_unit)
        bound = 8 * len(schedule) - 1
        for u in range(0, er_unit.n, 9):
            for v in range(u + 1, er_unit.n, 7):
                est = sketches[u].estimate_to(sketches[v])
                assert d[u, v] - 1e-9 <= est <= bound * d[u, v] + 1e-9
