"""Second property-test battery: serialization, super-source, slack
semantics, routing-vs-estimate consistency, and metric sanity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, apsp

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def graph_from_seed(seed: int, max_n: int = 14) -> Graph:
    """Deterministic small connected weighted graph from an integer seed."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_n))
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(int(rng.integers(0, v)), v, float(rng.integers(1, 10)))
    for _ in range(int(rng.integers(0, n + 1))):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(rng.integers(1, 10)))
    return g


class TestSerializationProperties:
    @settings(max_examples=20, **COMMON)
    @given(seed=st.integers(0, 10**6), k=st.integers(1, 3))
    def test_tz_round_trip_preserves_everything(self, seed, k):
        from repro.oracle.serialization import loads, dumps
        from repro.tz import build_tz_sketches_centralized

        g = graph_from_seed(seed)
        sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
        for s in sketches:
            assert loads(dumps(s)) == s

    @settings(max_examples=15, **COMMON)
    @given(seed=st.integers(0, 10**6))
    def test_graceful_round_trip(self, seed):
        from repro.oracle.serialization import loads, dumps
        from repro.slack.graceful import build_graceful_centralized

        g = graph_from_seed(seed, max_n=10)
        sketches, _ = build_graceful_centralized(g, seed=seed)
        s = sketches[0]
        assert loads(dumps(s)) == s


class TestSuperSourceProperties:
    @settings(max_examples=20, **COMMON)
    @given(seed=st.integers(0, 10**6),
           members_seed=st.integers(0, 10**6))
    def test_matches_centralized_on_random_instances(self, seed,
                                                     members_seed):
        from repro.algorithms import distances_to_set
        from repro.slack.density_net import nearest_in_set_centralized

        g = graph_from_seed(seed)
        rng = np.random.default_rng(members_seed)
        size = int(rng.integers(1, g.n + 1))
        members = sorted(rng.choice(g.n, size=size, replace=False).tolist())
        got, _ = distances_to_set(g, members, seed=seed)
        want = nearest_in_set_centralized(apsp(g), members)
        for (gd, gw), (wd, ww) in zip(got, want):
            assert gd == pytest.approx(wd)
            assert gw == ww


class TestSlackSemanticsProperties:
    @settings(max_examples=20, **COMMON)
    @given(seed=st.integers(0, 10**6),
           eps=st.floats(min_value=0.05, max_value=0.95))
    def test_eps_far_counts_match_definition(self, seed, eps):
        from repro.oracle.evaluation import eps_far_mask

        g = graph_from_seed(seed)
        d = apsp(g)
        far = eps_far_mask(d, eps)
        n = g.n
        for u in range(n):
            for v in range(n):
                if u == v:
                    assert not far[u, v]
                    continue
                closer = int(np.sum(d[u] < d[u, v]))
                assert far[u, v] == (closer >= eps * n)

    @settings(max_examples=15, **COMMON)
    @given(seed=st.integers(0, 10**6))
    def test_slack_coverage_decreases_in_eps(self, seed):
        from repro.oracle.evaluation import slack_coverage

        g = graph_from_seed(seed)
        if g.n < 3:
            return
        d = apsp(g)
        cov = [slack_coverage(d, e) for e in (0.1, 0.4, 0.8)]
        assert cov[0] >= cov[1] >= cov[2]


class TestRoutingVsEstimateProperties:
    @settings(max_examples=15, **COMMON)
    @given(seed=st.integers(0, 10**6), k=st.integers(1, 3))
    def test_routes_realize_real_walks(self, seed, k):
        """Every routed path is a walk in the graph whose weight is the
        route weight, lower-bounded by the true distance."""
        from repro.routing import build_routing_scheme, route_packet

        g = graph_from_seed(seed, max_n=10)
        d = apsp(g)
        scheme = build_routing_scheme(g, k=k, seed=seed)
        for u in range(g.n):
            for v in range(g.n):
                res = route_packet(scheme, g, u, v)
                w = sum(g.weight(a, b)
                        for a, b in zip(res.path, res.path[1:]))
                assert w == pytest.approx(res.weight)
                assert res.weight >= d[u, v] - 1e-9
                assert res.weight <= scheme.stretch_bound() * d[u, v] + 1e-9


class TestGeneratorProperties:
    @settings(max_examples=25, **COMMON)
    @given(n=st.integers(2, 60), seed=st.integers(0, 10**6))
    def test_er_always_connected_and_valid(self, n, seed):
        from repro.graphs import erdos_renyi

        g = erdos_renyi(n, seed=seed)
        g.validate()  # connected + polynomial weights

    @settings(max_examples=15, **COMMON)
    @given(n=st.integers(2, 50), seed=st.integers(0, 10**6))
    def test_geometric_weights_metric_like(self, n, seed):
        from repro.graphs import random_geometric

        g = random_geometric(n, seed=seed)
        d = apsp(g)
        assert np.all(np.isfinite(d))
        # symmetry + zero diagonal = a genuine metric matrix
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)
