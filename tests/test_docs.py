"""The docs are executable: run every ``python`` snippet in ``docs/*.md``
and check intra-repo links in the docs and README.

This is the "doctest pass" the CI docs job runs.  Each markdown file's
fenced ``python`` blocks execute top to bottom in one shared namespace
(so a later snippet can use names an earlier one defined, exactly as a
reader would follow the page); ``bash`` blocks are not executed.  Link
checking covers every relative ``[text](target)`` — a doc pointing at a
moved file fails CI instead of rotting.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO / "docs").glob("*.md"))
LINKED_FILES = DOC_FILES + [REPO / "README.md"]

_FENCE = re.compile(r"^```(\w*)\s*$")
# [text](target) — excluding images and in-cell pipes; good enough for
# our hand-written markdown
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _python_blocks(path: pathlib.Path) -> list[tuple[int, str]]:
    """``(first_line, source)`` for every fenced python block."""
    blocks, buf, lang, start = [], [], None, 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        fence = _FENCE.match(line)
        if fence and lang is None:
            lang, buf, start = fence.group(1) or "", [], lineno + 1
        elif line.strip() == "```" and lang is not None:
            if lang == "python":
                blocks.append((start, "\n".join(buf)))
            lang = None
        elif lang is not None:
            buf.append(line)
    assert lang is None, f"{path.name}: unterminated code fence"
    return blocks


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    """Every python snippet on the page runs, in page order, sharing one
    namespace — the doctest pass for the prose docs."""
    blocks = _python_blocks(path)
    namespace: dict = {}
    for lineno, source in blocks:
        code = compile(source, f"{path.name}:{lineno}", "exec")
        exec(code, namespace)  # asserts inside the snippets do the checking


def test_docs_have_snippets():
    """The serving guide must keep at least a handful of runnable
    snippets — an all-prose rewrite would silently disable the pass."""
    assert sum(len(_python_blocks(p)) for p in DOC_FILES) >= 5


@pytest.mark.parametrize("path", LINKED_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    """Every relative link in docs/*.md and README.md points at a real
    file (anchors are stripped; external URLs are skipped)."""
    text = path.read_text()
    broken = []
    for target in _LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        rel = target.split("#", 1)[0]
        if not rel:  # pure in-page anchor
            continue
        if not (path.parent / rel).resolve().exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken links {broken}"


def test_readme_matrix_matches_registry():
    """The README claims its scheme matrix is generated from the SCHEMES
    registry — enforce it, so adding a scheme without re-running
    ``python -m repro schemes --markdown`` fails CI."""
    from repro.oracle.schemes import schemes_markdown

    readme = (REPO / "README.md").read_text()
    assert schemes_markdown() in readme
