"""Protocol-v2 frame fuzzing: hostile bytes must never wedge the server.

One :class:`OracleServer` IO loop multiplexes every connection, so a
single malformed frame that escapes as an exception kills serving for
*everyone* — the failure mode this suite exists to prevent (it caught
exactly that: a valid-JSON-but-non-dict head used to ``AttributeError``
the loop).  Hypothesis drives raw sockets with

* arbitrary garbage bytes,
* corrupt length prefixes (``head_len`` overrunning ``frame_len``,
  frame lengths past ``MAX_FRAME_BYTES``),
* truncated prefixes of well-formed frames,
* framing-valid heads that are invalid UTF-8 / invalid JSON / valid
  JSON but not an object,
* well-formed JSON requests with unknown kinds, bogus request ids, and
  junk bodies,

and after every exchange asserts the contract: the fuzzed connection
yields only well-formed reply frames (typed ``error`` frames included)
or a clean disconnect — and a **control client on a fresh connection
still gets answers**, proving the IO loop and handler pool survived.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import build_sketches
from repro.graphs import assign_uniform_weights, erdos_renyi
from repro.service import OracleServer, connect, sample_query_pairs
from repro.service.transport import MAX_FRAME_BYTES

_PREFIX = struct.Struct("<II")


@pytest.fixture(scope="module")
def fuzz_server():
    g = assign_uniform_weights(erdos_renyi(16, seed=21), seed=22)
    built = build_sketches(g, scheme="stretch3", seed=5, eps=0.5)
    server = OracleServer(built, jobs=1, cache_size=0)
    host, port = server.serve("127.0.0.1:0", block=False)
    yield server, (host, port), g
    server.close()


def _frame(head_bytes: bytes, body: bytes = b"",
           frame_len: int | None = None,
           head_len: int | None = None) -> bytes:
    if frame_len is None:
        frame_len = 4 + len(head_bytes) + len(body)
    if head_len is None:
        head_len = len(head_bytes)
    return _PREFIX.pack(frame_len, head_len) + head_bytes + body


def _json_frame(head: dict, body: bytes = b"") -> bytes:
    return _frame(json.dumps(head).encode("utf-8"), body)


# -- payload strategies ------------------------------------------------
garbage = st.binary(min_size=0, max_size=256)

corrupt_prefix = st.tuples(
    st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
    st.binary(max_size=64),
).map(lambda t: _PREFIX.pack(t[0], t[1]) + t[2])

oversized = st.binary(max_size=32).map(
    lambda tail: _PREFIX.pack(MAX_FRAME_BYTES + 7, 4) + tail)

non_json_head = st.binary(min_size=1, max_size=64).map(
    lambda hb: _frame(hb))

non_dict_head = st.sampled_from(
    [b"[1,2]", b"null", b'"query"', b"3", b"true"]).map(
    lambda hb: _frame(hb))

_rid = st.one_of(st.none(), st.integers(-9, 9), st.text(max_size=6),
                 st.lists(st.integers(0, 3), max_size=2),
                 st.dictionaries(st.text(max_size=3),
                                 st.integers(0, 3), max_size=2))

bogus_request = st.fixed_dictionaries({
    "kind": st.sampled_from(["query", "dist_many", "stats", "apply",
                             "close?", "", "hello", "epoch"]),
    "id": _rid,
}).flatmap(lambda head: st.binary(max_size=64).map(
    lambda body: _json_frame(head, body)))

well_formed = st.one_of(non_json_head, non_dict_head, bogus_request)

truncated = st.tuples(well_formed, st.integers(1, 32)).map(
    lambda t: t[0][:max(1, len(t[0]) - t[1])])

payloads = st.lists(
    st.one_of(garbage, corrupt_prefix, oversized, non_json_head,
              non_dict_head, bogus_request, truncated),
    min_size=1, max_size=3)


def _exchange(addr, payload: bytes) -> None:
    """Send one hostile payload and drain the connection to EOF (or a
    short timeout); every complete reply frame must parse."""
    with socket.create_connection(addr, timeout=5.0) as sock:
        sock.sendall(payload)
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        buf = b""
        while True:
            try:
                chunk = sock.recv(1 << 16)
            except socket.timeout:
                pytest.fail("fuzzed connection hung: no reply, no "
                            f"disconnect for {payload[:40]!r}...")
            except OSError:
                break
            if not chunk:
                break
            buf += chunk
        # whatever came back must be a clean frame stream prefix:
        # hello first, then results / typed error frames
        while len(buf) >= 8:
            frame_len, head_len = _PREFIX.unpack_from(buf)
            assert 4 + head_len <= frame_len <= MAX_FRAME_BYTES
            if len(buf) < 4 + frame_len:
                break  # server was cut off mid-frame by our close: fine
            head = json.loads(buf[8:8 + head_len].decode("utf-8"))
            assert isinstance(head, dict) and "kind" in head
            buf = buf[4 + frame_len:]


@given(batch=payloads)
@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_hostile_frames_never_wedge_the_server(fuzz_server, batch):
    server, addr, g = fuzz_server
    for payload in batch:
        _exchange(addr, payload)
    # the liveness contract: a fresh client still gets answers after
    # every hostile exchange (IO loop alive, handler pool not leaked)
    pairs = sample_query_pairs(g.n, 8, seed=1)
    with connect(f"tcp://{addr[0]}:{addr[1]}") as control:
        assert len(control.dist_many(pairs)) == len(pairs)


def test_bogus_request_id_comes_back_typed(fuzz_server):
    """A JSON request with an unknown kind and a junk id yields a typed
    error frame echoing that id — not a disconnect, not silence."""
    server, addr, _ = fuzz_server
    with socket.create_connection(addr, timeout=5.0) as sock:
        frames = []

        def read_frame():
            hdr = b""
            while len(hdr) < 8:
                hdr += sock.recv(8 - len(hdr))
            frame_len, head_len = _PREFIX.unpack(hdr)
            data = b""
            while len(data) < frame_len - 4:
                data += sock.recv(frame_len - 4 - len(data))
            return json.loads(data[:head_len].decode("utf-8"))

        frames.append(read_frame())  # hello
        sock.sendall(_json_frame({"kind": "no-such-kind", "id": [3, "x"]}))
        reply = read_frame()
        frames.append(reply)
    assert frames[0]["kind"] == "hello"
    assert reply["kind"] == "error"
    assert reply["id"] == [3, "x"]
    assert reply.get("etype")


def test_non_dict_json_head_disconnects_cleanly(fuzz_server):
    """The regression this suite caught: ``[1,2]`` as a frame head must
    drop the one connection, not crash the shared IO loop."""
    server, addr, g = fuzz_server
    for hb in (b"[1,2]", b"null", b'"hi"'):
        _exchange(addr, _frame(hb))
    with connect(f"tcp://{addr[0]}:{addr[1]}") as control:
        pairs = sample_query_pairs(g.n, 4, seed=2)
        assert len(control.dist_many(pairs)) == len(pairs)
