"""k-Source Shortest Paths and super-source Bellman-Ford."""

import numpy as np
import pytest

from repro.algorithms import distances_to_set, k_source_shortest_paths
from repro.errors import ConfigError
from repro.graphs import apsp, path_graph, ring, shortest_path_diameter
from repro.slack.density_net import nearest_in_set_centralized


class TestKSource:
    def test_distances_exact(self, er_weighted):
        sources = [0, 5, 11]
        per_node, _ = k_source_shortest_paths(er_weighted, sources, seed=1)
        d = apsp(er_weighted)
        for u in er_weighted.nodes():
            for s in sources:
                assert per_node[u][s] == pytest.approx(d[u, s])

    def test_only_sources_reported(self, er_unit):
        per_node, _ = k_source_shortest_paths(er_unit, [3], seed=1)
        assert all(set(m) == {3} for m in per_node)

    def test_empty_sources_rejected(self, er_unit):
        with pytest.raises(ConfigError):
            k_source_shortest_paths(er_unit, [])

    def test_out_of_range_source_rejected(self, er_unit):
        with pytest.raises(ConfigError):
            k_source_shortest_paths(er_unit, [er_unit.n])

    def test_round_bound_scales_with_sources(self):
        g = ring(16)
        S = shortest_path_diameter(g)
        _, m1 = k_source_shortest_paths(g, [0], seed=1)
        _, m4 = k_source_shortest_paths(g, [0, 4, 8, 12], seed=1)
        # Lemma 3.4 shape: |sources| * S with small constants
        assert m1.rounds <= 2 * S + 2
        assert m4.rounds <= 4 * (S + 2)


class TestSuperSource:
    def test_distance_to_set(self, er_weighted):
        members = [2, 9, 17]
        got, _ = distances_to_set(er_weighted, members, seed=1)
        d = apsp(er_weighted)
        want = d[:, members].min(axis=1)
        assert np.allclose([g[0] for g in got], want)

    def test_witness_is_closest_member(self, er_weighted):
        members = [2, 9, 17]
        got, _ = distances_to_set(er_weighted, members, seed=1)
        want = nearest_in_set_centralized(apsp(er_weighted), members)
        assert [(g[0], g[1]) for g in got] == [
            (pytest.approx(w[0]), w[1]) for w in want]

    def test_tie_broken_by_smallest_id(self):
        # node 1 is equidistant (1.0) from members 0 and 2
        g = path_graph(3)
        got, _ = distances_to_set(g, [0, 2], seed=1)
        assert got[1] == (1.0, 0)

    def test_member_sees_itself(self, er_unit):
        got, _ = distances_to_set(er_unit, [7], seed=1)
        assert got[7] == (0.0, 7)

    def test_empty_set_rejected(self, er_unit):
        with pytest.raises(ConfigError):
            distances_to_set(er_unit, [])

    def test_rounds_order_S_not_S_times_members(self):
        # a single BF wavefront: rounds must NOT scale with |members|
        g = ring(20)
        S = shortest_path_diameter(g)
        _, m1 = distances_to_set(g, [0], seed=1)
        _, m10 = distances_to_set(g, list(range(0, 20, 2)), seed=1)
        assert m10.rounds <= m1.rounds + 2
        assert m1.rounds <= S + 2
