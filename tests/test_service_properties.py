"""Property-based tests for the serving layer (repro.service).

Two invariants, checked on every generated instance:

* **batch/single bit-identity** — for random connected weighted graphs and
  all k ∈ {2, 3, 4}, every batched answer equals the single-query answer
  *exactly* (``==`` on floats, not approx), across shard counts and cache
  configurations;
* **sandwich bound** — every estimate satisfies
  ``d(u, v) <= est <= (2k-1) d(u, v)`` against the Dijkstra (APSP) ground
  truth.

The default profile keeps examples small so the tier-1 run stays fast; the
``slow``-marked exhaustive variants (bigger graphs, every pair, more
examples — further scaled by the ``nightly`` hypothesis profile, see
``conftest.py``) are for the nightly job:
``pytest --runslow -m slow tests/test_service_properties.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.graphs import Graph, apsp
from repro.service import QueryEngine, TZIndex, build_tz_sketches_parallel
from repro.tz import build_tz_sketches_centralized, estimate_distance

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

KS = (2, 3, 4)


@st.composite
def connected_graphs(draw, max_n=14):
    """Random connected weighted graph: spanning tree + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    weights = st.integers(min_value=1, max_value=12)
    g = Graph(n)
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        g.add_edge(u, v, float(draw(weights)))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(draw(weights)))
    return g


def _all_ordered_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return us.ravel(), vs.ravel()


class TestBatchedEqualsSingle:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(), seed=st.integers(min_value=0, max_value=10**6))
    def test_every_batched_answer_equals_single(self, g, seed):
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            single = [estimate_distance(sketches[u], sketches[v])
                      for u, v in zip(us, vs)]
            batched = TZIndex(sketches).estimate_many(us, vs)
            assert batched.tolist() == single  # exact, not approx

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=5))
    def test_shard_count_never_changes_answers(self, g, seed, shards):
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            base = TZIndex(sketches, num_shards=1).estimate_many(us, vs)
            sharded = TZIndex(sketches, num_shards=shards).estimate_many(us, vs)
            assert np.array_equal(base, sharded)

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           cache=st.integers(min_value=0, max_value=64))
    def test_cache_never_changes_answers(self, g, seed, cache):
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=seed)
        engine = QueryEngine(sketches, cache_size=cache)
        us, vs = _all_ordered_pairs(g.n)
        pairs = np.stack([us, vs], axis=1)
        first = engine.dist_many(pairs)
        again = engine.dist_many(pairs)  # now (partly) served from cache
        single = [engine.reference_query(int(u), int(v))
                  for u, v in zip(us, vs)]
        assert first.tolist() == single
        assert again.tolist() == single


class TestSandwichBound:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(), seed=st.integers(min_value=0, max_value=10**6))
    def test_estimates_within_2k_minus_1(self, g, seed):
        d = apsp(g)
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            est = TZIndex(sketches).estimate_many(us, vs)
            lo = d[us, vs]
            hi = (2 * k - 1) * d[us, vs]
            assert (est >= lo - 1e-9).all()
            assert (est <= hi + 1e-9).all()

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           jobs=st.integers(min_value=1, max_value=4))
    def test_parallel_build_keeps_the_bound(self, g, seed, jobs):
        d = apsp(g)
        sketches, _ = build_tz_sketches_parallel(g, k=3, seed=seed, jobs=jobs)
        us, vs = _all_ordered_pairs(g.n)
        est = TZIndex(sketches).estimate_many(us, vs)
        assert (est >= d[us, vs] - 1e-9).all()
        assert (est <= 5 * d[us, vs] + 1e-9).all()


@pytest.mark.slow
class TestExhaustive:
    """Nightly-scale variants: larger graphs, every ordered pair.  No
    explicit ``max_examples`` — the active hypothesis profile governs, so
    the nightly job's ``REPRO_HYPOTHESIS_PROFILE=nightly`` scales it up."""

    @settings(**COMMON)
    @given(g=connected_graphs(max_n=40),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=8))
    def test_identity_and_sandwich_large(self, g, seed, shards):
        d = apsp(g)
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            single = [estimate_distance(sketches[u], sketches[v])
                      for u, v in zip(us, vs)]
            est = TZIndex(sketches, num_shards=shards).estimate_many(us, vs)
            assert est.tolist() == single
            assert (est >= d[us, vs] - 1e-9).all()
            assert (est <= (2 * k - 1) * d[us, vs] + 1e-9).all()


def _single_answers(sketches, us, vs):
    """Per-pair single-query answers with QueryError as a sentinel."""
    out = []
    for u, v in zip(us, vs):
        try:
            out.append(sketches[u].estimate_to(sketches[v]))
        except QueryError:
            out.append("raise")
    return out


def _batched_answers(index, us, vs):
    """Per-pair batch-of-one answers with QueryError as a sentinel, plus
    the full-batch outcome."""
    per_pair = []
    for u, v in zip(us, vs):
        try:
            per_pair.append(float(index.estimate_many(
                np.asarray([u]), np.asarray([v]))[0]))
        except QueryError:
            per_pair.append("raise")
    try:
        full = index.estimate_many(us, vs)
        full_raises = False
    except QueryError:
        full, full_raises = None, True
    return per_pair, full, full_raises


def _assert_batched_equals_single(sketches, index):
    """The universal contract: batch-of-one answers (values *and*
    QueryErrors) equal the single-query path pair by pair, and the full
    batch raises exactly when some pair raises singly."""
    n = len(sketches)
    us, vs = _all_ordered_pairs(n)
    single = _single_answers(sketches, us, vs)
    per_pair, full, full_raises = _batched_answers(index, us, vs)
    assert per_pair == single  # exact floats, exact raise positions
    assert full_raises == ("raise" in single)
    if not full_raises:
        assert full.tolist() == single


class TestSlackSchemesBatchedEqualsSingle:
    """ISSUE 2 acceptance: every scheme's batched answers are bit-identical
    to the single-query path, across shard counts."""

    @settings(max_examples=8, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=4))
    def test_stretch3(self, g, seed, shards):
        from repro import build_sketches
        from repro.service import Stretch3Index

        built = build_sketches(g, scheme="stretch3", eps=0.4, seed=seed)
        _assert_batched_equals_single(
            built.sketches, Stretch3Index(built.sketches, num_shards=shards))

    @settings(max_examples=8, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=4))
    def test_cdg(self, g, seed, shards):
        from repro import build_sketches
        from repro.service import CDGIndex

        built = build_sketches(g, scheme="cdg", eps=0.4, k=2, seed=seed)
        _assert_batched_equals_single(
            built.sketches, CDGIndex(built.sketches, num_shards=shards))

    @settings(max_examples=6, **COMMON)
    @given(g=connected_graphs(max_n=8),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=4))
    def test_graceful(self, g, seed, shards):
        from repro import build_sketches
        from repro.service import GracefulIndex

        built = build_sketches(g, scheme="graceful", seed=seed)
        _assert_batched_equals_single(
            built.sketches, GracefulIndex(built.sketches, num_shards=shards))

    @settings(max_examples=6, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           jobs=st.sampled_from([1, 4]))
    def test_shard_server_jobs_never_change_answers(self, g, seed, jobs):
        # in-process decomposition across jobs values; the real-pool
        # equality lives in test_service_workers.py (a pool per hypothesis
        # example would dominate the runtime)
        from repro import build_sketches
        from repro.service import ShardServer, build_index

        built = build_sketches(g, scheme="stretch3", eps=0.4, seed=seed)
        us, vs = _all_ordered_pairs(g.n)
        index = build_index(built.sketches, num_shards=4)
        base = index.estimate_many(us, vs)
        with ShardServer(index, jobs=jobs) as srv:
            assert srv.estimate_many(us, vs).tolist() == base.tolist()


class TestQueryErrorParityDisconnected:
    """Batched raises exactly where the single path raises, on graphs
    where some pairs genuinely have no shared landmark."""

    def _two_components(self):
        from repro.graphs import Graph

        # components {0, 1} and {2, 3, 4}
        return Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0),
                         (2, 4, 2.0)])

    def test_stretch3_net_missing_a_component(self):
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized
        from repro.service import Stretch3Index

        g = self._two_components()
        # net only in the big component: every pair touching {0, 1} raises
        net = DensityNet(eps=0.5, n=g.n, members=(2,))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        idx = Stretch3Index(sketches, num_shards=3)
        _assert_batched_equals_single(sketches, idx)
        with pytest.raises(QueryError, match="share no net node"):
            idx.estimate_many(np.array([0]), np.array([2]))

    def test_stretch3_net_in_both_components(self):
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized
        from repro.service import Stretch3Index

        g = self._two_components()
        # one net node per component: within-component pairs answer,
        # cross-component pairs raise (all routes are inf)
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        idx = Stretch3Index(sketches)
        _assert_batched_equals_single(sketches, idx)
        assert idx.estimate(3, 4) == sketches[3].estimate_to(sketches[4])

    def test_cdg_cross_component_parity(self):
        from repro.slack.cdg import build_cdg_centralized
        from repro.slack.density_net import DensityNet
        from repro.service import CDGIndex

        g = self._two_components()
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        for seed in range(5):
            sketches, _, _ = build_cdg_centralized(g, 0.5, 2, seed=seed,
                                                   net=net)
            _assert_batched_equals_single(sketches,
                                          CDGIndex(sketches, num_shards=2))

    def test_graceful_component_parity(self):
        from repro.slack.cdg import build_cdg_centralized
        from repro.slack.density_net import DensityNet
        from repro.slack.graceful import GracefulSketch
        from repro.service import GracefulIndex

        g = self._two_components()
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        # hand-assembled two-component graceful set (the stock builder
        # samples its own nets, which may miss a component entirely)
        a, _, _ = build_cdg_centralized(g, 0.5, 1, seed=1, net=net)
        b, _, _ = build_cdg_centralized(g, 0.25, 2, seed=2, net=net)
        sketches = [GracefulSketch(node=u, components=(a[u], b[u]))
                    for u in range(g.n)]
        _assert_batched_equals_single(
            sketches, GracefulIndex(sketches, num_shards=2))

    def test_workers_match_inline_on_disconnected(self):
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized
        from repro.service import ShardServer, Stretch3Index

        g = self._two_components()
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        idx = Stretch3Index(sketches, num_shards=2)
        with ShardServer(idx, jobs=2) as srv:
            ok = np.array([2, 3]), np.array([4, 2])
            assert srv.estimate_many(*ok).tolist() == \
                idx.estimate_many(*ok).tolist()
            with pytest.raises(QueryError):
                srv.estimate_many(np.array([1]), np.array([3]))
