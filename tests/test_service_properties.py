"""Property-based tests for the serving layer (repro.service).

Two invariants, checked on every generated instance:

* **batch/single bit-identity** — for random connected weighted graphs and
  all k ∈ {2, 3, 4}, every batched answer equals the single-query answer
  *exactly* (``==`` on floats, not approx), across shard counts and cache
  configurations;
* **sandwich bound** — every estimate satisfies
  ``d(u, v) <= est <= (2k-1) d(u, v)`` against the Dijkstra (APSP) ground
  truth.

The default profile keeps examples small so the tier-1 run stays fast; the
``slow``-marked exhaustive variants (bigger graphs, every pair, more
examples — further scaled by the ``nightly`` hypothesis profile, see
``conftest.py``) are for the nightly job:
``pytest --runslow -m slow tests/test_service_properties.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, apsp
from repro.service import QueryEngine, TZIndex, build_tz_sketches_parallel
from repro.tz import build_tz_sketches_centralized, estimate_distance

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

KS = (2, 3, 4)


@st.composite
def connected_graphs(draw, max_n=14):
    """Random connected weighted graph: spanning tree + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    weights = st.integers(min_value=1, max_value=12)
    g = Graph(n)
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        g.add_edge(u, v, float(draw(weights)))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(draw(weights)))
    return g


def _all_ordered_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return us.ravel(), vs.ravel()


class TestBatchedEqualsSingle:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(), seed=st.integers(min_value=0, max_value=10**6))
    def test_every_batched_answer_equals_single(self, g, seed):
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            single = [estimate_distance(sketches[u], sketches[v])
                      for u, v in zip(us, vs)]
            batched = TZIndex(sketches).estimate_many(us, vs)
            assert batched.tolist() == single  # exact, not approx

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=5))
    def test_shard_count_never_changes_answers(self, g, seed, shards):
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            base = TZIndex(sketches, num_shards=1).estimate_many(us, vs)
            sharded = TZIndex(sketches, num_shards=shards).estimate_many(us, vs)
            assert np.array_equal(base, sharded)

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           cache=st.integers(min_value=0, max_value=64))
    def test_cache_never_changes_answers(self, g, seed, cache):
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=seed)
        engine = QueryEngine(sketches, cache_size=cache)
        us, vs = _all_ordered_pairs(g.n)
        pairs = np.stack([us, vs], axis=1)
        first = engine.dist_many(pairs)
        again = engine.dist_many(pairs)  # now (partly) served from cache
        single = [engine.reference_query(int(u), int(v))
                  for u, v in zip(us, vs)]
        assert first.tolist() == single
        assert again.tolist() == single


class TestSandwichBound:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(), seed=st.integers(min_value=0, max_value=10**6))
    def test_estimates_within_2k_minus_1(self, g, seed):
        d = apsp(g)
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            est = TZIndex(sketches).estimate_many(us, vs)
            lo = d[us, vs]
            hi = (2 * k - 1) * d[us, vs]
            assert (est >= lo - 1e-9).all()
            assert (est <= hi + 1e-9).all()

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           jobs=st.integers(min_value=1, max_value=4))
    def test_parallel_build_keeps_the_bound(self, g, seed, jobs):
        d = apsp(g)
        sketches, _ = build_tz_sketches_parallel(g, k=3, seed=seed, jobs=jobs)
        us, vs = _all_ordered_pairs(g.n)
        est = TZIndex(sketches).estimate_many(us, vs)
        assert (est >= d[us, vs] - 1e-9).all()
        assert (est <= 5 * d[us, vs] + 1e-9).all()


@pytest.mark.slow
class TestExhaustive:
    """Nightly-scale variants: larger graphs, every ordered pair.  No
    explicit ``max_examples`` — the active hypothesis profile governs, so
    the nightly job's ``REPRO_HYPOTHESIS_PROFILE=nightly`` scales it up."""

    @settings(**COMMON)
    @given(g=connected_graphs(max_n=40),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=8))
    def test_identity_and_sandwich_large(self, g, seed, shards):
        d = apsp(g)
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
            us, vs = _all_ordered_pairs(g.n)
            single = [estimate_distance(sketches[u], sketches[v])
                      for u, v in zip(us, vs)]
            est = TZIndex(sketches, num_shards=shards).estimate_many(us, vs)
            assert est.tolist() == single
            assert (est >= d[us, vs] - 1e-9).all()
            assert (est <= (2 * k - 1) * d[us, vs] + 1e-9).all()
