"""Property-based tests (hypothesis) on the core invariants.

Strategy: generate small random weighted connected graphs plus construction
parameters, and check the paper's invariants hold on *every* generated
instance — estimates never undershoot, stretch bounds hold, bunches invert
clusters, hierarchies nest, nets cover.
"""

from __future__ import annotations


import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distkey import DistKey, min_key
from repro.graphs import Graph, apsp
from repro.oracle.evaluation import eps_far_mask
from repro.tz import (
    brute_force_bunches,
    build_tz_sketches_centralized,
    estimate_distance,
    sample_hierarchy,
)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@st.composite
def connected_graphs(draw, max_n=14):
    """Random connected weighted graph: spanning tree + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    weights = st.integers(min_value=1, max_value=12)
    g = Graph(n)
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        g.add_edge(u, v, float(draw(weights)))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(draw(weights)))
    return g


class TestDistKeyProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                        allow_nan=False),
                              st.integers(min_value=0, max_value=50)),
                    min_size=1, max_size=20))
    def test_min_key_is_total_order_minimum(self, pairs):
        keys = [DistKey(d, v) for d, v in pairs]
        m = min_key(keys)
        assert all(not (k < m) for k in keys)
        assert m in keys

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False),
           st.integers(min_value=0, max_value=10**6))
    def test_strictness(self, d, v):
        k = DistKey(d, v)
        assert not k < k


class TestTZProperties:
    @settings(max_examples=25, **COMMON)
    @given(g=connected_graphs(), k=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_estimate_sandwich(self, g, k, seed):
        """d <= estimate <= (2k-1) d for every pair, every instance."""
        sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
        d = apsp(g)
        for u in range(g.n):
            for v in range(u + 1, g.n):
                est = estimate_distance(sketches[u], sketches[v])
                assert d[u, v] - 1e-9 <= est <= (2 * k - 1) * d[u, v] + 1e-9

    @settings(max_examples=25, **COMMON)
    @given(g=connected_graphs(), k=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_classic_query_sandwich(self, g, k, seed):
        sketches, _ = build_tz_sketches_centralized(g, k=k, seed=seed)
        d = apsp(g)
        for u in range(g.n):
            for v in range(u + 1, g.n):
                est = estimate_distance(sketches[u], sketches[v],
                                        method="classic")
                assert d[u, v] - 1e-9 <= est <= (2 * k - 1) * d[u, v] + 1e-9

    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(), k=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_bunches_match_definition(self, g, k, seed):
        """Cluster-growing == brute-force definition on every instance."""
        h = sample_hierarchy(g.n, k, seed=seed)
        sketches, _ = build_tz_sketches_centralized(g, hierarchy=h)
        brute = brute_force_bunches(g, h)
        for u in range(g.n):
            assert sketches[u].bunch == brute[u]

    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(max_n=10), seed=st.integers(0, 10**6))
    def test_distributed_equals_centralized(self, g, seed):
        """The headline differential property, on random instances."""
        from repro.tz import build_tz_sketches_distributed

        h = sample_hierarchy(g.n, 2, seed=seed)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        res = build_tz_sketches_distributed(g, hierarchy=h, seed=seed)
        for a, b in zip(cs, res.sketches):
            assert a.pivots == b.pivots
            assert a.bunch == b.bunch

    @settings(max_examples=15, **COMMON)
    @given(g=connected_graphs(max_n=9), seed=st.integers(0, 10**6))
    def test_echo_mode_equals_centralized(self, g, seed):
        from repro.tz import build_tz_sketches_distributed

        h = sample_hierarchy(g.n, 2, seed=seed)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                            seed=seed)
        for a, b in zip(cs, res.sketches):
            assert a.pivots == b.pivots
            assert a.bunch == b.bunch


class TestHierarchyProperties:
    @given(n=st.integers(min_value=1, max_value=300),
           k=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_nesting_and_partition(self, n, k, seed):
        h = sample_hierarchy(n, k, seed=seed)
        levels = [set(h.A(i).tolist()) for i in range(k + 1)]
        for a, b in zip(levels, levels[1:]):
            assert b <= a
        assert levels[0] == set(range(n))
        assert levels[k] == set()
        assert h.A(k - 1).size > 0


class TestSlackProperties:
    @settings(max_examples=15, **COMMON)
    @given(g=connected_graphs(max_n=12),
           eps=st.sampled_from([0.2, 0.4, 0.7]),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_stretch3_sandwich_on_far_pairs(self, g, eps, seed):
        from repro.slack.stretch3 import build_stretch3_centralized

        d = apsp(g)
        sketches, _ = build_stretch3_centralized(g, eps, seed=seed,
                                                 dist_matrix=d)
        far = eps_far_mask(d, eps)
        for u in range(g.n):
            for v in range(u + 1, g.n):
                est = sketches[u].estimate_to(sketches[v])
                assert est >= d[u, v] - 1e-9
                if far[u, v] or far[v, u]:
                    assert est <= 3 * d[u, v] + 1e-9

    @settings(max_examples=15, **COMMON)
    @given(g=connected_graphs(max_n=12),
           eps=st.sampled_from([0.3, 0.6]),
           k=st.integers(min_value=1, max_value=2),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_cdg_sandwich_on_far_pairs(self, g, eps, k, seed):
        from repro.slack.cdg import build_cdg_centralized

        d = apsp(g)
        sketches, _, _ = build_cdg_centralized(g, eps, k, seed=seed,
                                               dist_matrix=d)
        far = eps_far_mask(d, eps)
        for u in range(g.n):
            for v in range(u + 1, g.n):
                est = sketches[u].estimate_to(sketches[v])
                assert est >= d[u, v] - 1e-9
                if far[u, v] or far[v, u]:
                    assert est <= (8 * k - 1) * d[u, v] + 1e-9

    @settings(max_examples=10, **COMMON)
    @given(g=connected_graphs(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_graceful_worst_case(self, g, seed):
        from repro.slack.graceful import build_graceful_centralized

        d = apsp(g)
        sketches, schedule = build_graceful_centralized(g, seed=seed,
                                                        dist_matrix=d)
        bound = 8 * len(schedule) - 1
        for u in range(g.n):
            for v in range(u + 1, g.n):
                est = sketches[u].estimate_to(sketches[v])
                assert d[u, v] - 1e-9 <= est <= bound * d[u, v] + 1e-9


class TestNetProperties:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(max_n=14),
           eps=st.sampled_from([0.2, 0.5, 0.9]),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_small_n_nets_cover(self, g, eps, seed):
        # for n <= 14 the sampling probability is 1 (5 ln n / (eps n) >= 1),
        # so the net is all of V and coverage is deterministic
        from repro.slack.density_net import (sample_density_net,
                                             verify_density_net)

        d = apsp(g)
        net = sample_density_net(g.n, eps, seed=seed)
        rep = verify_density_net(d, net)
        assert rep["coverage_ok"]


class TestSimulatorProperties:
    @settings(max_examples=20, **COMMON)
    @given(g=connected_graphs(max_n=12),
           src=st.integers(min_value=0, max_value=11),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_bellman_ford_exact_on_random_graphs(self, g, src, seed):
        from repro.algorithms import single_source_distances

        src = src % g.n
        dists, _, _ = single_source_distances(g, src, seed=seed)
        d = apsp(g)
        assert np.allclose(dists, d[src])
