"""The fleet subsystem: shard fan-out serving and scatter/gather builds.

What is locked down here:

* the ``cluster://host:port,host:port`` endpoint grammar and the
  :class:`~repro.service.cluster.ClusterSpec` / ``even_ranges``
  placement layer,
* :func:`~repro.service.index.restrict_index_shards` — every scheme's
  restricted store answers identically on the shards it keeps, and
  restriction is idempotent byte-for-byte,
* **bit-identity**: a fleet of 2 and 4 shard-range hosts answers every
  scheme's ``dist_many`` and pipelined ``dist_stream`` exactly like one
  full host — including :class:`~repro.errors.QueryError` parity on
  disconnected graphs and post-``apply_updates`` epochs,
* typed :class:`~repro.errors.ClusterError` degradation: a dead host
  fails fast with the host named, survivors stay live, and a fresh
  session over a still-covering remnant keeps answering bitwise,
* distributed construction: :func:`build_distributed` blobs are
  byte-identical to restricting one full build of the same seed,
* the CLI surface: ``serve --port 0`` prints the bound address,
  ``build --shard-range`` writes a host slice, ``cluster-bench`` runs
  with identity asserted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ClusterError, ConfigError, QueryError
from repro.graphs import Graph, erdos_renyi, random_geometric
from repro.oracle.api import build_sketches
from repro.oracle.serialization import index_binary_bytes
from repro.service import (ClusterClient, ClusterSpec, OracleServer,
                           apply_updates_distributed, build_distributed,
                           build_index, build_shard_range, connect,
                           even_ranges, loopback_fleet,
                           restrict_index_shards, sample_query_pairs)
from repro.service.cluster import run_cluster_benchmark
from repro.service.transport import parse_endpoint
from repro.service.updates import UpdateableIndex, sample_weight_changes

SHARDS = 4
SCHEME_PARAMS = {
    "tz": {"k": 3},
    "stretch3": {"eps": 0.4},
    "cdg": {"eps": 0.4, "k": 2},
    "graceful": {},
}


@pytest.fixture(scope="module")
def graph() -> Graph:
    return random_geometric(60, seed=808)


@pytest.fixture(scope="module")
def indexes(graph):
    return {scheme: build_index(
        build_sketches(graph, scheme, seed=9, **params).sketches,
        num_shards=SHARDS)
        for scheme, params in SCHEME_PARAMS.items()}


@pytest.fixture(scope="module")
def reference(graph, indexes):
    """Single-full-host answers per scheme — the identity baseline."""
    pairs = sample_query_pairs(graph.n, 150, seed=4)
    out = {}
    for scheme, index in indexes.items():
        with OracleServer(index) as server:
            host, port = server.serve("127.0.0.1:0", block=False)
            with connect(f"tcp://{host}:{port}") as session:
                out[scheme] = (pairs, session.dist_many(pairs))
    return out


# ----------------------------------------------------------------------
# grammar and placement
# ----------------------------------------------------------------------
class TestEndpointGrammar:
    def test_parse_cluster_endpoint(self):
        ep = parse_endpoint("cluster://a:1,b:2,c:3")
        assert ep.transport == "cluster"
        assert ep.options["hosts"] == (("a", 1), ("b", 2), ("c", 3))
        assert ep.describe() == "cluster://a:1,b:2,c:3"

    def test_trailing_semicolon_tolerated(self):
        ep = parse_endpoint("cluster://a:1,b:2;")
        assert ep.options["hosts"] == (("a", 1), ("b", 2))

    def test_empty_host_rejected(self):
        with pytest.raises(ConfigError):
            parse_endpoint("cluster://a:1,,b:2")
        with pytest.raises(ConfigError):
            parse_endpoint("cluster://")

    def test_cluster_spec_parse_forms(self):
        want = (("a", 1), ("b", 2))
        assert ClusterSpec.parse("cluster://a:1,b:2").hosts == want
        assert ClusterSpec.parse("a:1,b:2").hosts == want
        assert ClusterSpec.parse([("a", 1), ("b", 2)]).hosts == want
        assert ClusterSpec.parse("tcp://a:1").hosts == (("a", 1),)
        spec = ClusterSpec.parse(want)
        assert ClusterSpec.parse(spec) is spec
        assert spec.describe() == "cluster://a:1,b:2"

    def test_cluster_spec_rejects_junk(self):
        with pytest.raises(ConfigError):
            ClusterSpec.parse("inproc://")
        with pytest.raises(ConfigError):
            ClusterSpec.parse([])

    def test_even_ranges(self):
        assert even_ranges(8, 2) == [(0, 4), (4, 8)]
        assert even_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert even_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert even_ranges(5, 1) == [(0, 5)]
        with pytest.raises(ConfigError):
            even_ranges(2, 3)
        with pytest.raises(ConfigError):
            even_ranges(4, 0)


# ----------------------------------------------------------------------
# shard restriction
# ----------------------------------------------------------------------
class TestRestrictIndexShards:
    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    def test_idempotent_and_full_range_identity(self, indexes, scheme):
        index = indexes[scheme]
        assert restrict_index_shards(index, 0, SHARDS) is index
        part = restrict_index_shards(index, 1, 3)
        again = restrict_index_shards(part, 1, 3)
        assert index_binary_bytes(part) == index_binary_bytes(again)

    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    def test_restricted_shards_answer_identically(self, graph, indexes,
                                                  scheme):
        """Per owned shard, the restricted store's shard_answer output
        matches the full store's — the property the fleet combiner
        rests on."""
        index = indexes[scheme]
        part = restrict_index_shards(index, 0, 2)
        pairs = sample_query_pairs(graph.n, 80, seed=12)
        state, requests = index.plan(pairs[:, 0], pairs[:, 1])
        for s in range(2):
            full = index.shard_answer(s, requests[s])
            got = part.shard_answer(s, requests[s])
            assert _tree_equal(got, full), (scheme, s)

    def test_bad_ranges_rejected(self, indexes):
        index = indexes["tz"]
        for lo, hi in [(-1, 2), (2, 2), (3, 2), (0, SHARDS + 1)]:
            with pytest.raises(ConfigError):
                restrict_index_shards(index, lo, hi)


def _tree_equal(a, b) -> bool:
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (isinstance(a, tuple) and isinstance(b, tuple)
                and len(a) == len(b)
                and all(_tree_equal(x, y) for x, y in zip(a, b)))
    return np.array_equal(np.asarray(a), np.asarray(b))


# ----------------------------------------------------------------------
# fleet bit-identity
# ----------------------------------------------------------------------
class TestFleetIdentity:
    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    @pytest.mark.parametrize("num_hosts", [2, 4])
    def test_bit_identical_to_single_host(self, indexes, reference,
                                          scheme, num_hosts):
        pairs, want = reference[scheme]
        with loopback_fleet(indexes[scheme], num_hosts) as (spec, servers):
            assert len(servers) == num_hosts
            with connect(spec) as session:
                got = session.dist_many(pairs)
                assert got.tolist() == want.tolist()
                batches = [pairs[i:i + 40] for i in range(0, len(pairs), 40)]
                streamed = list(session.dist_stream(batches))
                assert np.concatenate(streamed).tolist() == want.tolist()
                # single-pair path and stats ride the same machinery
                u, v = int(pairs[0, 0]), int(pairs[0, 1])
                assert session.dist(u, v) == want[0]
                stats = session.stats()
                assert len(stats["hosts"]) == num_hosts
                assert stats["scheme"] == scheme

    def test_placement_covers_every_shard_once(self, indexes):
        with loopback_fleet(indexes["tz"], 2) as (spec, _servers):
            with ClusterClient(spec) as fleet:
                owned = sorted(s for shards in fleet.placement().values()
                               for s in shards)
                assert owned == list(range(SHARDS))

    def test_query_error_parity_on_disconnected(self):
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized

        # components {0, 1} and {2, 3, 4}; net only in the big one, so
        # any pair touching {0, 1} raises — with the single-host
        # message, and the fleet session survives to answer again
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        net = DensityNet(eps=0.5, n=g.n, members=(2,))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        index = build_index(sketches, num_shards=2)
        ok = np.array([[2, 3], [3, 4], [2, 4]])
        want = [sketches[u].estimate_to(sketches[v]) for u, v in ok]
        with loopback_fleet(index, 2) as (spec, _servers):
            with connect(spec) as session:
                assert session.dist_many(ok).tolist() == want
                with pytest.raises(QueryError, match="share no net node"):
                    session.dist_many(np.array([[0, 2]]))
                assert session.dist_many(ok).tolist() == want

    def test_range_host_refuses_whole_batch_queries(self, indexes):
        with loopback_fleet(indexes["tz"], 2) as (spec, servers):
            host, port = servers[0].address
            with connect(f"tcp://{host}:{port}") as direct:
                with pytest.raises(ConfigError, match="cluster://"):
                    direct.dist_many(np.array([[0, 1]]))

    def test_fetch_index_needs_a_full_host(self, indexes):
        index = indexes["tz"]
        with loopback_fleet(index, 2) as (spec, _servers):
            with ClusterClient(spec) as fleet:
                with pytest.raises(ConfigError, match="no.*whole index"):
                    fleet.fetch_index(None)
        with loopback_fleet(index, 1) as (spec, _servers):
            with ClusterClient(spec) as fleet:
                fetched = fleet.fetch_index(None)
                assert (index_binary_bytes(fetched)
                        == index_binary_bytes(index))


# ----------------------------------------------------------------------
# degradation: dead hosts are named, survivors keep serving
# ----------------------------------------------------------------------
class TestPartialFleetDegradation:
    def test_connect_to_dead_host_names_it(self, indexes):
        with loopback_fleet(indexes["tz"], 2) as (spec, servers):
            dead = f"{servers[1].address[0]}:{servers[1].address[1]}"
            servers[1].close()
            with pytest.raises(ClusterError, match=dead.replace(".", r"\.")):
                ClusterClient(spec)

    def test_kill_one_host_mid_stream(self, graph, indexes, reference):
        """Satellite 3: host A serves every shard, B and C split them.
        A owns all placement; killing A mid-``dist_stream`` raises a
        typed ClusterError naming A, B and C stay live, and a fresh
        session over the survivors answers bit-identically for the
        shards they own (all of them)."""
        index = indexes["tz"]
        pairs, want = reference["tz"]
        mid = SHARDS // 2
        a = OracleServer(index)
        b = OracleServer(index, shard_range=(0, mid))
        c = OracleServer(index, shard_range=(mid, SHARDS))
        try:
            for srv in (a, b, c):
                srv.serve("127.0.0.1:0", block=False)
            key = {srv: f"{srv.address[0]}:{srv.address[1]}"
                   for srv in (a, b, c)}
            spec = "cluster://" + ",".join(key[s] for s in (a, b, c))
            with ClusterClient(spec, pipeline_depth=1) as fleet:
                # A advertises [0, S) and is listed first: it owns all
                assert fleet.placement() == {key[a]: list(range(SHARDS))}
                batches = [pairs[:50], pairs[50:100], pairs[100:]]
                stream = fleet.dist_stream(iter(batches))
                assert next(stream).tolist() == want[:50].tolist()
                a.close()
                with pytest.raises(ClusterError) as err:
                    list(stream)
                assert key[a] in str(err.value)
                assert key[a] in err.value.causes
            # B and C survived and still cover every shard
            survivors = f"cluster://{key[b]},{key[c]}"
            with ClusterClient(survivors) as fleet:
                assert sorted(s for ss in fleet.placement().values()
                              for s in ss) == list(range(SHARDS))
                assert fleet.dist_many(pairs).tolist() == want.tolist()
        finally:
            for srv in (a, b, c):
                srv.close()

    def test_uncovered_shards_rejected_at_connect(self, indexes):
        index = indexes["tz"]
        a = OracleServer(index, shard_range=(0, 1))
        b = OracleServer(index, shard_range=(1, 2))
        try:
            for srv in (a, b):
                srv.serve("127.0.0.1:0", block=False)
            spec = "cluster://" + ",".join(
                f"{s.address[0]}:{s.address[1]}" for s in (a, b))
            with pytest.raises(ClusterError, match="no host serves"):
                ClusterClient(spec)
        finally:
            for srv in (a, b):
                srv.close()

    def test_mismatched_fleets_rejected(self, graph, indexes):
        other = build_index(
            build_sketches(graph, "tz", k=2, seed=1).sketches,
            num_shards=2)
        a = OracleServer(indexes["tz"])
        b = OracleServer(other)
        try:
            for srv in (a, b):
                srv.serve("127.0.0.1:0", block=False)
            spec = "cluster://" + ",".join(
                f"{s.address[0]}:{s.address[1]}" for s in (a, b))
            with pytest.raises(ClusterError, match="disagree"):
                ClusterClient(spec)
        finally:
            for srv in (a, b):
                srv.close()


# ----------------------------------------------------------------------
# updates across the fleet
# ----------------------------------------------------------------------
class TestFleetUpdates:
    @pytest.fixture()
    def updateable_fleet(self, graph):
        def factory(i, lo, hi):
            return UpdateableIndex(graph, scheme="tz", seed=9,
                                   num_shards=SHARDS, k=3)

        with loopback_fleet(factory, 2, num_shards=SHARDS) as out:
            yield out

    def test_apply_updates_distributed_bit_identical(self, graph,
                                                     updateable_fleet):
        spec, _servers = updateable_fleet
        changes = sample_weight_changes(graph, 3, seed=77, low=0.2,
                                        high=0.6)
        twin = UpdateableIndex(graph, scheme="tz", seed=9,
                               num_shards=SHARDS, k=3)
        twin_report = twin.apply(changes)
        pairs = sample_query_pairs(graph.n, 120, seed=5)
        want = twin.index.estimate_many(pairs[:, 0], pairs[:, 1])
        with connect(spec) as session:
            report = apply_updates_distributed(session, changes)
            assert report.mode == twin_report.mode
            assert report.epoch == twin_report.epoch
            assert session.epoch == twin_report.epoch
            assert session.dist_many(pairs).tolist() == want.tolist()

    def test_stale_session_replans_after_foreign_apply(self, graph,
                                                       updateable_fleet):
        """A session whose routing store predates another session's
        apply must notice the epoch disagreement in the probe replies,
        refresh, and answer from the new epoch — never combine mixed
        partials."""
        spec, _servers = updateable_fleet
        changes = sample_weight_changes(graph, 3, seed=78, low=0.2,
                                        high=0.6)
        twin = UpdateableIndex(graph, scheme="tz", seed=9,
                               num_shards=SHARDS, k=3)
        twin.apply(changes)
        pairs = sample_query_pairs(graph.n, 100, seed=6)
        want = twin.index.estimate_many(pairs[:, 0], pairs[:, 1])
        with connect(spec) as stale, connect(spec) as writer:
            before = stale.dist_many(pairs)  # pins the old router
            report = apply_updates_distributed(writer, changes)
            got = stale.dist_many(pairs)
            assert got.tolist() == want.tolist()
            assert stale.last_result_epoch == report.epoch
            assert not np.array_equal(before, got) or report.mode == "noop"

    def test_apply_updates_distributed_wants_a_fleet(self, indexes):
        with OracleServer(indexes["tz"]) as server:
            host, port = server.serve("127.0.0.1:0", block=False)
            with connect(f"tcp://{host}:{port}") as session:
                with pytest.raises(ConfigError, match="cluster"):
                    apply_updates_distributed(session, [])


    def test_scenario_oracle_over_a_fleet(self, graph):
        """The churn scenario runner drives a cluster:// endpoint
        unchanged: churn scatters through the fleet, reader sessions
        race the writer, and the oracle asserts every consumed answer
        is bit-identical to a legally observable epoch."""
        from repro.service.scenario import run_named_scenario

        def factory(i, lo, hi):
            return UpdateableIndex(graph, scheme="tz", seed=9,
                                   num_shards=SHARDS, k=3)

        with loopback_fleet(factory, 2, num_shards=SHARDS) as (spec, _s):
            result = run_named_scenario(
                "steady-mix", graph, scheme="tz", seed=9,
                endpoint=spec, num_shards=SHARDS, rounds=3, k=3)
        assert result.ok, result.violations


# ----------------------------------------------------------------------
# distributed construction
# ----------------------------------------------------------------------
class TestDistributedBuild:
    @pytest.mark.parametrize("scheme", ["tz", "stretch3"])
    def test_blobs_byte_identical_to_restricted_full_build(self, graph,
                                                           scheme):
        params = SCHEME_PARAMS[scheme]
        jobs = 2 if scheme == "tz" else None
        full = build_index(
            build_sketches(graph, scheme, seed=11, jobs=jobs,
                           **params).sketches,
            num_shards=SHARDS)
        blobs = build_distributed(graph, scheme, num_hosts=2,
                                  num_shards=SHARDS, seed=11, jobs=1,
                                  **params)
        assert [r for r, _ in blobs] == even_ranges(SHARDS, 2)
        for (lo, hi), blob in blobs:
            want = index_binary_bytes(restrict_index_shards(full, lo, hi))
            assert blob == want, (scheme, lo, hi)

    def test_process_pool_scatter_matches_serial(self, graph):
        serial = build_distributed(graph, "tz", num_hosts=2,
                                   num_shards=SHARDS, seed=11, jobs=1,
                                   k=3)
        pooled = build_distributed(graph, "tz", num_hosts=2,
                                   num_shards=SHARDS, seed=11, jobs=2,
                                   k=3)
        assert serial == pooled

    def test_blobs_serve_as_a_fleet(self, graph, reference, tmp_path):
        """The end-to-end loop: scatter the build, serve each blob as a
        shard-range host, and the fleet answers like the full index."""
        from repro.oracle.serialization import load_index_binary

        pairs, want = reference["tz"]
        blobs = build_distributed(graph, "tz", num_hosts=2,
                                  num_shards=SHARDS, seed=9, jobs=1, k=3)
        servers = []
        try:
            for (lo, hi), blob in blobs:
                path = tmp_path / f"host_{lo}_{hi}.rpix"
                path.write_bytes(blob)
                srv = OracleServer(load_index_binary(str(path)),
                                   shard_range=(lo, hi))
                srv.serve("127.0.0.1:0", block=False)
                servers.append(srv)
            spec = "cluster://" + ",".join(
                f"{s.address[0]}:{s.address[1]}" for s in servers)
            with connect(spec) as session:
                assert session.dist_many(pairs).tolist() == want.tolist()
        finally:
            for srv in servers:
                srv.close()

    def test_non_tz_scatter_needs_a_seed(self, graph):
        with pytest.raises(ConfigError, match="seed"):
            build_distributed(graph, "stretch3", num_hosts=2,
                              num_shards=4, eps=0.4)

    def test_build_shard_range_validates(self, graph):
        with pytest.raises(ConfigError):
            build_shard_range(graph, "tz", lo=2, hi=2, num_shards=4, k=2)
        with pytest.raises(ConfigError, match="needs k"):
            build_shard_range(graph, "tz", lo=0, hi=1, num_shards=4)


# ----------------------------------------------------------------------
# the benchmark harness is itself the correctness oracle
# ----------------------------------------------------------------------
def test_run_cluster_benchmark_small(graph, indexes):
    report = run_cluster_benchmark(indexes["tz"], hosts=(1, 2),
                                   queries=120, batch=40, seed=3)
    assert [r["hosts"] for r in report["rows"]] == [0, 1, 2]
    assert all(r["identical"] for r in report["rows"])
    assert report["num_shards"] == SHARDS


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestClusterCli:
    @pytest.fixture(scope="class")
    def graph_file(self, tmp_path_factory):
        from repro.graphs import write_edgelist

        path = tmp_path_factory.mktemp("fleet") / "g.edges"
        write_edgelist(erdos_renyi(40, seed=101), str(path))
        return str(path)

    @pytest.fixture(scope="class")
    def index_file(self, graph_file, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("fleet") / "idx.rpix"
        rc = main(["build", graph_file, "--scheme", "tz", "--k", "2",
                   "--seed", "5", "--format", "binary", "--shards", "4",
                   "-o", str(path)])
        assert rc == 0
        return str(path)

    def test_build_shard_range_slice(self, graph_file, index_file,
                                     tmp_path, capsys):
        from repro.cli import main
        from repro.oracle.serialization import load_index_binary

        out = tmp_path / "slice.rpix"
        rc = main(["build", graph_file, "--scheme", "tz", "--k", "2",
                   "--seed", "5", "--format", "binary", "--shards", "4",
                   "--shard-range", "0:2", "-o", str(out)])
        assert rc == 0
        assert "shard range [0:2)" in capsys.readouterr().out
        full = load_index_binary(index_file)
        assert (out.read_bytes()
                == index_binary_bytes(restrict_index_shards(full, 0, 2)))

    def test_build_shard_range_needs_binary(self, graph_file, tmp_path,
                                            capsys):
        from repro.cli import main

        rc = main(["build", graph_file, "--scheme", "tz", "--k", "2",
                   "--shard-range", "0:1",
                   "-o", str(tmp_path / "x.jsonl")])
        assert rc == 2
        assert "--format binary" in capsys.readouterr().err

    def test_serve_port_zero_prints_bound_address(self, index_file):
        """Satellite 1: ``--port 0`` binds a free port and prints the
        actual ``tcp://host:port`` on stdout before serving."""
        import os
        import subprocess
        import sys
        import time
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", index_file,
             "--port", "0", "--shard-range", "0:2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            deadline = time.monotonic() + 60
            line = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if " on tcp://" in line or not line:
                    break
            assert " on tcp://" in line, line
            assert "range=[0:2)" in line
            addr = line.rsplit(" on ", 1)[1].strip()
            assert not addr.endswith(":0")
            # the advertised socket answers probes for its range
            from repro.service.transport import _TcpTransport

            t = _TcpTransport(parse_endpoint(addr), timeout=10)
            try:
                assert t.shard_range == (0, 2)
            finally:
                t.close()
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_cluster_bench_cli(self, index_file, capsys):
        import json

        from repro.cli import main

        rc = main(["cluster-bench", index_file, "--hosts", "1", "2",
                   "--queries", "80", "--batch", "40"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert [r["hosts"] for r in report["rows"]] == [0, 1, 2]
        assert all(r["identical"] for r in report["rows"])

    def test_query_connect_cluster(self, index_file, capsys):
        from repro.cli import main
        from repro.oracle.serialization import load_index_binary

        index = load_index_binary(index_file)
        with loopback_fleet(index, 2) as (spec, _servers):
            rc = main(["query", "--connect", spec,
                       "--pairs", "0:1", "3:7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0:1 estimate=" in out and "3:7 estimate=" in out
