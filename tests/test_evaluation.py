"""Stretch evaluation machinery (repro.oracle.evaluation)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graphs import apsp, path_graph
from repro.oracle.evaluation import (
    average_stretch,
    eps_far_mask,
    evaluate_stretch,
    slack_coverage,
)


class TestEpsFarMask:
    def test_path_graph_semantics(self):
        d = apsp(path_graph(10))
        far = eps_far_mask(d, 0.5)
        # node 9 is 0.5-far from node 0 (>= 5 nodes strictly closer)
        assert far[0, 9]
        # node 1 is not (only node 0 itself is closer)
        assert not far[0, 1]

    def test_diagonal_false(self, er_weighted_apsp):
        far = eps_far_mask(er_weighted_apsp, 0.1)
        assert not far.diagonal().any()

    def test_eps_over_one_empty(self, er_weighted_apsp):
        far = eps_far_mask(er_weighted_apsp, 1.01)
        assert not far.any()

    def test_tiny_eps_covers_everything_off_diagonal(self, er_weighted_apsp):
        n = er_weighted_apsp.shape[0]
        far = eps_far_mask(er_weighted_apsp, 1.0 / (2 * n))
        off_diag = ~np.eye(n, dtype=bool)
        assert far[off_diag].all()

    def test_monotone_in_eps(self, er_weighted_apsp):
        small = eps_far_mask(er_weighted_apsp, 0.1)
        big = eps_far_mask(er_weighted_apsp, 0.5)
        assert np.all(big <= small)  # larger eps -> fewer far pairs

    def test_not_necessarily_symmetric(self):
        # a hub is close to everyone; leaf-to-leaf ranks differ
        from repro.graphs import star_path

        d = apsp(star_path(12))
        far = eps_far_mask(d, 0.3)
        assert (far != far.T).any()


class TestEvaluateStretch:
    def test_exact_oracle_scores_one(self, er_weighted_apsp):
        rep = evaluate_stretch(er_weighted_apsp,
                               lambda u, v: float(er_weighted_apsp[u, v]))
        assert rep.max_stretch == 1.0
        assert rep.mean_stretch == 1.0
        assert rep.underestimates == 0
        assert rep.exact_fraction == 1.0

    def test_doubling_oracle_scores_two(self, er_weighted_apsp):
        rep = evaluate_stretch(er_weighted_apsp,
                               lambda u, v: 2.0 * er_weighted_apsp[u, v])
        assert rep.max_stretch == pytest.approx(2.0)
        assert rep.exact_fraction == 0.0

    def test_underestimates_flagged(self, er_weighted_apsp):
        rep = evaluate_stretch(er_weighted_apsp,
                               lambda u, v: 0.5 * er_weighted_apsp[u, v])
        assert rep.underestimates == rep.pairs

    def test_pair_sampling(self, er_weighted_apsp):
        rep = evaluate_stretch(er_weighted_apsp,
                               lambda u, v: float(er_weighted_apsp[u, v]),
                               max_pairs=50, seed=1)
        assert rep.pairs == 50

    def test_slack_filter_reduces_pairs(self, er_weighted_apsp):
        full = evaluate_stretch(er_weighted_apsp,
                                lambda u, v: float(er_weighted_apsp[u, v]))
        slack = evaluate_stretch(er_weighted_apsp,
                                 lambda u, v: float(er_weighted_apsp[u, v]),
                                 eps=0.4)
        assert slack.pairs < full.pairs

    def test_single_node_rejected(self):
        with pytest.raises(ConfigError):
            evaluate_stretch(np.zeros((1, 1)), lambda u, v: 0.0)

    def test_row_rendering(self, er_weighted_apsp):
        rep = evaluate_stretch(er_weighted_apsp,
                               lambda u, v: float(er_weighted_apsp[u, v]))
        row = rep.as_row()
        assert row["pairs"] == rep.pairs and "max" in row


class TestAggregates:
    def test_average_stretch_of_exact_is_one(self, er_weighted_apsp):
        avg = average_stretch(er_weighted_apsp,
                              lambda u, v: float(er_weighted_apsp[u, v]))
        assert avg == 1.0

    def test_slack_coverage_bounds(self, er_weighted_apsp):
        c = slack_coverage(er_weighted_apsp, 0.3)
        assert 0.0 <= c <= 1.0
        # the guarantee is "at least 1 - eps of pairs" in spirit;
        # with the or-symmetric covering it is comfortably above 1 - 2*eps
        assert c >= 1 - 2 * 0.3

    def test_slack_coverage_monotone(self, er_weighted_apsp):
        assert slack_coverage(er_weighted_apsp, 0.1) >= \
            slack_coverage(er_weighted_apsp, 0.5)
