"""Lexicographic tie-breaking keys (repro.distkey)."""

import math

from repro.distkey import DistKey, INF_KEY, min_key


class TestOrdering:
    def test_distance_dominates(self):
        assert DistKey(1.0, 99) < DistKey(2.0, 0)

    def test_id_breaks_ties(self):
        assert DistKey(1.0, 3) < DistKey(1.0, 7)

    def test_equal_keys(self):
        assert not DistKey(1.0, 3) < DistKey(1.0, 3)

    def test_inf_key_dominates_everything_finite(self):
        assert DistKey(1e300, 10**9) < INF_KEY

    def test_inf_key_not_less_than_itself(self):
        assert not INF_KEY < INF_KEY


class TestInfKey:
    def test_is_inf(self):
        assert INF_KEY.is_inf()

    def test_finite_key_is_not_inf(self):
        assert not DistKey(5.0, 1).is_inf()

    def test_inf_distance(self):
        assert math.isinf(INF_KEY.dist)


class TestMinKey:
    def test_empty_gives_inf(self):
        assert min_key([]) is INF_KEY

    def test_single(self):
        k = DistKey(2.0, 5)
        assert min_key([k]) == k

    def test_tie_resolved_by_id(self):
        assert min_key([DistKey(2.0, 9), DistKey(2.0, 4)]) == DistKey(2.0, 4)

    def test_mixed(self):
        keys = [DistKey(3.0, 1), DistKey(2.0, 8), INF_KEY]
        assert min_key(keys) == DistKey(2.0, 8)
