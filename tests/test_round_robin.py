"""The round-robin multi-source engine (heart of Algorithm 2)."""


import pytest

from repro.algorithms.round_robin import (EngineListener, MultiSourceEngine,
                                          RoundRobinBFProgram)
from repro.congest import Simulator
from repro.distkey import DistKey, INF_KEY
from repro.graphs import apsp, path_graph


class RecordingListener(EngineListener):
    def __init__(self):
        self.rejected = []
        self.superseded = []
        self.sent = []

    def on_rejected(self, src, a, via):
        self.rejected.append((src, a, via))

    def on_superseded(self, src, parent):
        self.superseded.append((src, parent))

    def on_sent(self, src, dist, parent):
        self.sent.append((src, dist, parent))


def make_ctx_free_engine(node=0, threshold=INF_KEY, listener=None):
    return MultiSourceEngine(node, threshold=threshold, listener=listener)


class TestAcceptRule:
    def test_accepts_improvement(self):
        eng = make_ctx_free_engine()
        assert eng.accept(src=5, a=3.0, via=1, weight=2.0)
        assert eng.dist[5] == 5.0
        assert eng.via[5] == 1

    def test_rejects_non_improvement(self):
        eng = make_ctx_free_engine()
        eng.accept(5, 3.0, 1, 2.0)
        assert not eng.accept(5, 4.0, 2, 1.0)  # same cand 5.0, not strict
        assert eng.dist[5] == 5.0

    def test_threshold_blocks(self):
        eng = make_ctx_free_engine(threshold=DistKey(4.0, 7))
        assert not eng.accept(5, 3.0, 1, 2.0)  # cand 5.0 >= 4.0
        assert 5 not in eng.dist

    def test_threshold_tie_breaking(self):
        # cand == threshold dist: accepted only if src id < threshold id
        eng = make_ctx_free_engine(threshold=DistKey(5.0, 7))
        assert eng.accept(5, 3.0, 1, 2.0)      # (5.0, 5) < (5.0, 7)
        eng2 = make_ctx_free_engine(threshold=DistKey(5.0, 3))
        assert not eng2.accept(5, 3.0, 1, 2.0)  # (5.0, 5) >= (5.0, 3)

    def test_listener_sees_rejects(self):
        lst = RecordingListener()
        eng = make_ctx_free_engine(listener=lst)
        eng.accept(5, 3.0, 1, 2.0)
        eng.accept(5, 9.0, 2, 2.0)
        assert lst.rejected == [(5, 9.0, 2)]

    def test_supersede_reports_old_parent(self):
        lst = RecordingListener()
        eng = make_ctx_free_engine(listener=lst)
        eng.accept(5, 3.0, 1, 2.0)   # queued, parent (1, 3.0)
        eng.accept(5, 1.0, 2, 2.0)   # supersedes before send
        assert lst.superseded == [(5, (1, 3.0))]
        assert eng.dist[5] == 3.0

    def test_queue_holds_one_slot_per_source(self):
        eng = make_ctx_free_engine()
        eng.accept(5, 3.0, 1, 2.0)
        eng.accept(5, 1.0, 2, 2.0)
        eng.accept(6, 1.0, 2, 2.0)
        assert eng.queue_len() == 2  # sources 5 and 6, not 3 entries

    def test_max_queue_len_tracked(self):
        eng = make_ctx_free_engine()
        for s in range(4):
            eng.accept(s + 10, 1.0, 1, 1.0)
        assert eng.max_queue_len == 4


class TestProgramOnNetwork:
    def test_two_sources_both_learned(self):
        g = path_graph(5)
        sources = {0, 4}
        sim = Simulator(g, lambda u: RoundRobinBFProgram(u, u in sources))
        res = sim.run()
        d = apsp(g)
        for u in g.nodes():
            got = res.programs[u].result()
            assert got[0] == d[u, 0]
            assert got[4] == d[u, 4]

    def test_all_sources_equals_apsp(self, er_weighted):
        g = er_weighted
        sim = Simulator(g, lambda u: RoundRobinBFProgram(u, True))
        res = sim.run()
        d = apsp(g)
        for u in g.nodes():
            got = res.programs[u].result()
            assert len(got) == g.n
            for v, dist in got.items():
                assert dist == pytest.approx(d[u, v])

    def test_one_broadcast_per_round(self):
        # with many sources, per-round message count per node stays <= deg
        g = path_graph(4)
        sim = Simulator(g, lambda u: RoundRobinBFProgram(u, True))
        res = sim.run()
        # path has 3 edges => at most 6 directed messages per round
        assert res.metrics.max_inflight <= 6

    def test_serve_order_is_fifo(self):
        eng = make_ctx_free_engine()
        eng.accept(9, 1.0, 1, 1.0)
        eng.accept(4, 1.0, 1, 1.0)
        # FIFO: source 9 queued first, so it is served first
        assert eng._queue[0] == 9


class TestLocalModelAblation:
    def test_packed_mode_matches_distances(self, er_weighted):
        from repro.algorithms.ksource import k_source_shortest_paths

        sources = [0, 1, 2, 3, 4]
        base, m1 = k_source_shortest_paths(er_weighted, sources, seed=1)
        packed, m2 = k_source_shortest_paths(er_weighted, sources, seed=1,
                                             drain_per_round=len(sources))
        assert base == packed

    def test_packed_mode_saves_rounds(self, er_weighted):
        from repro.algorithms.ksource import k_source_shortest_paths

        sources = list(range(10))
        _, m1 = k_source_shortest_paths(er_weighted, sources, seed=1)
        _, m2 = k_source_shortest_paths(er_weighted, sources, seed=1,
                                        drain_per_round=10)
        assert m2.rounds < m1.rounds
