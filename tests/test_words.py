"""Word-size accounting (repro.words)."""

import pytest

from repro.words import (
    DEFAULT_BANDWIDTH_WORDS,
    distance_words,
    entry_words,
    id_words,
    log2n,
    payload_words,
)


class TestPayloadWords:
    def test_scalar_ints_cost_one(self):
        assert payload_words(7) == 1

    def test_floats_cost_one(self):
        assert payload_words(3.25) == 1

    def test_strings_cost_one(self):
        assert payload_words("bf") == 1

    def test_none_costs_one(self):
        assert payload_words(None) == 1

    def test_bool_costs_one(self):
        assert payload_words(True) == 1

    def test_tuple_sums_elements(self):
        assert payload_words(("bf", 3, 1.5)) == 3

    def test_nested_tuple(self):
        assert payload_words(("pack", ((1, 2.0), (3, 4.0)))) == 5

    def test_empty_tuple_costs_zero(self):
        assert payload_words(()) == 0

    def test_list_like_tuple(self):
        assert payload_words([1, 2, 3]) == 3

    def test_dict_counts_keys_and_values(self):
        assert payload_words({1: 2.0, 3: 4.0}) == 4

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            payload_words(object())

    def test_bellman_ford_message_is_three_words(self):
        # the canonical ("bf", src, dist) message shape
        assert payload_words(("bf", 17, 42.0)) == 3

    def test_echo_message_fits_default_bandwidth(self):
        assert payload_words(("tze", 2, 17, 42.0)) <= DEFAULT_BANDWIDTH_WORDS


class TestConventions:
    def test_id_and_distance_one_word_each(self):
        assert id_words() == 1
        assert distance_words() == 1

    def test_entry_is_two_words(self):
        assert entry_words() == 2

    def test_log2n_guards_small_inputs(self):
        assert log2n(0) == 1.0
        assert log2n(1) == 1.0
        assert log2n(8) == 3.0
