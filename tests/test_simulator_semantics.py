"""Fine-grained simulator semantics: clocks, quiescence callbacks,
finished(), and the errors module."""


import pytest

from repro.congest import NodeProgram, Simulator
from repro.errors import (
    ConfigError,
    GraphError,
    ProtocolError,
    QueryError,
    ReproError,
    SimulationError,
)
from repro.graphs import path_graph


class TestErrorsHierarchy:
    @pytest.mark.parametrize("exc", [GraphError, ConfigError, ProtocolError,
                                     SimulationError, QueryError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("x")


class ClockCounter(NodeProgram):
    needs_clock = True

    def __init__(self):
        self.ticks = 0
        self.stop_at = 5

    def on_round(self, ctx, inbox):
        self.ticks += 1

    def has_pending(self):
        return self.ticks < self.stop_at


class TestClocks:
    def test_needs_clock_nodes_tick_every_round(self):
        g = path_graph(3)
        sim = Simulator(g, lambda u: ClockCounter())
        res = sim.run()
        # pending work kept the network non-quiescent for 5 rounds even
        # with zero messages
        assert all(p.ticks == 5 for p in res.programs)
        assert res.metrics.rounds == 5
        assert res.metrics.messages == 0


class PhaseHopper(NodeProgram):
    """Advances through `phases` silent stages via on_quiescent."""

    def __init__(self, phases: int):
        self.remaining = phases
        self.advances = 0

    def on_quiescent(self, ctx):
        if self.remaining > 0:
            self.remaining -= 1
            self.advances += 1

    def finished(self):
        return self.remaining == 0


class TestQuiescenceCallbacks:
    def test_silent_phase_chains_advance(self):
        g = path_graph(2)
        sim = Simulator(g, lambda u: PhaseHopper(4))
        res = sim.run()
        assert all(p.advances == 4 for p in res.programs)
        assert res.metrics.rounds == 0  # all stages were traffic-free

    def test_never_finishing_program_raises(self):
        class Stuck(NodeProgram):
            def finished(self):
                return False

        g = path_graph(2)
        with pytest.raises(SimulationError, match="livelock"):
            Simulator(g, lambda u: Stuck()).run()

    def test_mixed_finished_states(self):
        # one program needs two callbacks, the other none: the run must
        # keep offering callbacks until all report finished
        class Lazy(PhaseHopper):
            pass

        g = path_graph(2)
        progs = {0: PhaseHopper(2), 1: PhaseHopper(0)}
        Simulator(g, lambda u: progs[u]).run()
        assert progs[0].advances == 2


class SendAtQuiescence(NodeProgram):
    def __init__(self, node):
        self.node = node
        self.sent = False
        self.got = False

    def on_quiescent(self, ctx):
        if self.node == 0 and not self.sent:
            self.sent = True
            ctx.broadcast(("wake",))

    def on_round(self, ctx, inbox):
        if inbox:
            self.got = True

    def finished(self):
        return self.sent if self.node == 0 else True


class TestQuiescentSends:
    def test_messages_sent_at_quiescence_are_delivered(self):
        g = path_graph(2)
        res = Simulator(g, lambda u: SendAtQuiescence(u)).run()
        assert res.programs[1].got
        assert res.metrics.rounds == 1


class TestBandwidthBoundary:
    def test_exactly_at_budget_ok(self):
        class Sender(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, (1, 2, 3, 4, 5, 6))  # exactly 6 words

        g = path_graph(2)
        res = Simulator(g, lambda u: Sender()).run()
        assert res.metrics.words == 6

    def test_one_word_over_rejected(self):
        class Sender(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, (1, 2, 3, 4, 5, 6, 7))

        g = path_graph(2)
        with pytest.raises(ProtocolError, match="bandwidth"):
            Simulator(g, lambda u: Sender()).run()

    def test_min_bandwidth_validation(self):
        g = path_graph(2)
        with pytest.raises(ProtocolError):
            Simulator(g, lambda u: NodeProgram(), bandwidth_words=0)
