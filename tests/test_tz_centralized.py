"""Centralized Thorup-Zwick (repro.tz.centralized)."""


import numpy as np
import pytest

from repro.distkey import DistKey, INF_KEY
from repro.errors import ConfigError
from repro.graphs import apsp, path_graph
from repro.tz import (
    brute_force_bunches,
    build_tz_sketches_centralized,
    compute_bunches,
    compute_pivot_keys,
    sample_hierarchy,
)
from repro.tz.centralized import cluster_of, multi_source_dijkstra_keys


class TestMultiSourceDijkstra:
    def test_single_source(self, er_weighted):
        keys = multi_source_dijkstra_keys(er_weighted, np.array([0]))
        d = apsp(er_weighted)
        assert all(keys[u].dist == pytest.approx(d[u, 0])
                   for u in er_weighted.nodes())
        assert all(k.node == 0 for k in keys)

    def test_witness_tie_break(self):
        g = path_graph(3)
        keys = multi_source_dijkstra_keys(g, np.array([0, 2]))
        assert keys[1] == DistKey(1.0, 0)  # equidistant, smaller ID wins

    def test_set_distance(self, er_weighted):
        srcs = np.array([3, 8, 20])
        keys = multi_source_dijkstra_keys(er_weighted, srcs)
        d = apsp(er_weighted)
        want = d[:, srcs].min(axis=1)
        assert np.allclose([k.dist for k in keys], want)


class TestPivots:
    def test_level0_pivot_is_self(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        for u in er_weighted.nodes():
            assert pk[0][u] == DistKey(0.0, u)

    def test_sentinel_level_is_infinite(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        assert all(k is INF_KEY for k in pk[3])

    def test_pivot_distances_monotone_in_level(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        for u in er_weighted.nodes():
            assert pk[0][u].dist <= pk[1][u].dist <= pk[2][u].dist

    def test_member_of_Ai_has_zero_pivot(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=1)
        pk = compute_pivot_keys(er_weighted, h)
        for u in h.A(1):
            assert pk[1][int(u)] == DistKey(0.0, int(u))


class TestBunches:
    def test_matches_brute_force(self, er_weighted, er_heavy, small_grid):
        for g, seed in ((er_weighted, 1), (er_heavy, 2), (small_grid, 3)):
            h = sample_hierarchy(g.n, 3, seed=seed)
            fast = compute_bunches(g, h)
            slow = brute_force_bunches(g, h)
            assert fast == slow

    def test_self_in_own_bunch(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=4)
        bunches = compute_bunches(er_weighted, h)
        for u in er_weighted.nodes():
            lvl = h.level_of(u)
            assert bunches[u][u] == (0.0, lvl)

    def test_top_level_bunch_is_all_of_top_set(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 3, seed=5)
        bunches = compute_bunches(er_weighted, h)
        top = set(int(x) for x in h.exact_level(2))
        for u in er_weighted.nodes():
            at_top = {v for v, (_, lvl) in bunches[u].items() if lvl == 2}
            assert at_top == top

    def test_member_of_next_level_has_empty_lower_bunch(self, er_weighted):
        # u in A_{i+1} has d(u, A_{i+1}) = 0 => B_i(u) is empty
        h = sample_hierarchy(er_weighted.n, 3, seed=6)
        bunches = compute_bunches(er_weighted, h)
        for u in h.A(1):
            u = int(u)
            level0 = [v for v, (_, lvl) in bunches[u].items() if lvl == 0]
            assert level0 == []

    def test_cluster_bunch_inversion(self, er_weighted):
        # u in C(w) <=> w in B(u) (paper Section 3.2)
        h = sample_hierarchy(er_weighted.n, 3, seed=7)
        pk = compute_pivot_keys(er_weighted, h)
        bunches = compute_bunches(er_weighted, h, pk)
        for i in range(3):
            for w in h.exact_level(i):
                w = int(w)
                cluster = cluster_of(er_weighted, w, i, pk[i + 1])
                members = {u for u in er_weighted.nodes() if w in bunches[u]}
                assert set(cluster) == members

    def test_k1_bunch_is_entire_graph(self, er_weighted):
        h = sample_hierarchy(er_weighted.n, 1, seed=8)
        bunches = compute_bunches(er_weighted, h)
        d = apsp(er_weighted)
        for u in er_weighted.nodes():
            assert len(bunches[u]) == er_weighted.n
            for v, (dist, lvl) in bunches[u].items():
                assert lvl == 0 and dist == pytest.approx(d[u, v])


class TestBuild:
    def test_requires_k_or_hierarchy(self, er_unit):
        with pytest.raises(ConfigError):
            build_tz_sketches_centralized(er_unit)

    def test_conflicting_k_rejected(self, er_unit):
        h = sample_hierarchy(er_unit.n, 2, seed=9)
        with pytest.raises(ConfigError):
            build_tz_sketches_centralized(er_unit, k=3, hierarchy=h)

    def test_sketch_count_and_shape(self, er_unit):
        sketches, h = build_tz_sketches_centralized(er_unit, k=3, seed=10)
        assert len(sketches) == er_unit.n
        assert all(s.k == 3 and len(s.pivots) == 3 for s in sketches)

    def test_expected_size_shape(self):
        # Lemma 3.1: E|L(u)| = O(k n^{1/k}); verify the measured mean is
        # within a generous constant of it
        from repro.graphs import erdos_renyi

        g = erdos_renyi(128, seed=11)
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=12)
        mean_entries = np.mean([len(s.bunch) for s in sketches])
        assert mean_entries <= 6 * 2 * 128 ** 0.5
