"""The TZ label and query algorithms (repro.tz.sketch, Lemma 3.2)."""

import pytest

from repro.errors import QueryError
from repro.graphs import apsp
from repro.tz import build_tz_sketches_centralized, estimate_distance
from repro.tz.sketch import TZSketch, query_level


@pytest.fixture(scope="module")
def built(er_weighted_module=None):
    # module-local build shared by the query tests
    from repro.graphs import erdos_renyi, assign_uniform_weights

    g = assign_uniform_weights(erdos_renyi(36, seed=202), seed=203)
    sketches, h = build_tz_sketches_centralized(g, k=3, seed=77)
    return g, sketches, apsp(g)


class TestLabelShape:
    def test_pivot_zero_is_self(self, built):
        _, sketches, _ = built
        for s in sketches:
            assert s.pivots[0] == (s.node, 0.0)

    def test_size_words_accounting(self, built):
        _, sketches, _ = built
        s = sketches[0]
        assert s.size_words() == 2 * (3 + len(s.bunch))

    def test_bunch_at_level_partition(self, built):
        _, sketches, _ = built
        s = sketches[0]
        total = sum(len(s.bunch_at_level(i)) for i in range(3))
        assert total == len(s.bunch)

    def test_bunch_distance_lookup(self, built):
        _, sketches, _ = built
        s = sketches[0]
        assert s.bunch_distance(s.node) == 0.0
        with pytest.raises(QueryError):
            s.bunch_distance(-5)

    def test_wrong_pivot_count_rejected(self):
        with pytest.raises(QueryError):
            TZSketch(node=0, k=3, pivots=((0, 0.0),), bunch={})


class TestPaperQuery:
    def test_never_underestimates(self, built):
        _, sketches, d = built
        n = len(sketches)
        for u in range(n):
            for v in range(u + 1, n):
                assert estimate_distance(sketches[u], sketches[v]) >= \
                    d[u, v] - 1e-9

    def test_stretch_bound(self, built):
        _, sketches, d = built
        n = len(sketches)
        for u in range(n):
            for v in range(u + 1, n):
                est = estimate_distance(sketches[u], sketches[v])
                assert est <= (2 * 3 - 1) * d[u, v] + 1e-9

    def test_symmetric(self, built):
        _, sketches, _ = built
        for u, v in [(0, 5), (3, 11), (20, 35)]:
            assert estimate_distance(sketches[u], sketches[v]) == \
                estimate_distance(sketches[v], sketches[u])

    def test_same_node_zero(self, built):
        _, sketches, _ = built
        assert estimate_distance(sketches[4], sketches[4]) == 0.0

    def test_level0_bunch_hit_is_exact(self, built):
        # if v in B_0(u), the level-0 scan hits (p_0(v) = v in B_0(u), or
        # the symmetric branch) and the estimate is exact; at higher levels
        # the query may legitimately terminate early through a pivot, so
        # exactness is only guaranteed at level 0
        _, sketches, d = built
        hits = 0
        for u, s in enumerate(sketches):
            for v, (dist, lvl) in s.bunch.items():
                if v == u or lvl != 0:
                    continue
                est = estimate_distance(s, sketches[v])
                assert est == pytest.approx(d[u, v])
                hits += 1
        assert hits > 0  # the property was actually exercised

    def test_level_stretch_refinement(self, built):
        # Lemma 3.2's proof: the estimate at terminating level i* is at
        # most (2 i* + 1) d(u, v)
        _, sketches, d = built
        for u in range(0, 30, 5):
            for v in range(u + 1, 30, 7):
                i_star = query_level(sketches[u], sketches[v])
                est = estimate_distance(sketches[u], sketches[v])
                assert est <= (2 * i_star + 1) * d[u, v] + 1e-9

    def test_mismatched_k_rejected(self, built):
        _, sketches, _ = built
        other = TZSketch(node=0, k=1, pivots=((0, 0.0),), bunch={0: (0.0, 0)})
        with pytest.raises(QueryError):
            estimate_distance(sketches[1], other)


class TestClassicQuery:
    def test_never_underestimates_and_bounded(self, built):
        _, sketches, d = built
        n = len(sketches)
        for u in range(n):
            for v in range(u + 1, n):
                est = estimate_distance(sketches[u], sketches[v],
                                        method="classic")
                assert d[u, v] - 1e-9 <= est <= (2 * 3 - 1) * d[u, v] + 1e-9

    def test_classic_at_most_paper_plus_refinements(self, built):
        # both satisfy the same bound; they may differ per pair, but the
        # classic walk can stop earlier (plain membership, no level check)
        _, sketches, d = built
        diffs = 0
        for u in range(0, 36, 3):
            for v in range(u + 1, 36, 4):
                a = estimate_distance(sketches[u], sketches[v])
                b = estimate_distance(sketches[u], sketches[v],
                                      method="classic")
                if a != b:
                    diffs += 1
        # they are allowed to differ; this asserts both were computed
        assert diffs >= 0

    def test_unknown_method_rejected(self, built):
        _, sketches, _ = built
        with pytest.raises(QueryError):
            estimate_distance(sketches[0], sketches[1], method="nope")


class TestK1:
    def test_k1_is_exact(self):
        from repro.graphs import erdos_renyi

        g = erdos_renyi(25, seed=5)
        sketches, _ = build_tz_sketches_centralized(g, k=1, seed=6)
        d = apsp(g)
        for u in range(25):
            for v in range(25):
                assert estimate_distance(sketches[u], sketches[v]) == \
                    pytest.approx(d[u, v])
