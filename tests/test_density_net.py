"""ε-density nets (repro.slack.density_net, Lemma 4.2)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.slack.density_net import (
    DensityNet,
    ball_radii,
    build_density_net_distributed,
    cdg_original_net,
    nearest_in_set_centralized,
    sample_density_net,
    sampling_probability,
    verify_density_net,
)


class TestSamplingProbability:
    def test_formula(self):
        assert sampling_probability(100, 0.5) == pytest.approx(
            5 * math.log(100) / (0.5 * 100))

    def test_capped_at_one(self):
        assert sampling_probability(10, 0.01) == 1.0

    def test_eps_validation(self):
        with pytest.raises(ConfigError):
            sampling_probability(10, 0.0)
        with pytest.raises(ConfigError):
            sampling_probability(10, 1.5)


class TestSampling:
    def test_nonempty(self):
        for seed in range(10):
            assert sample_density_net(50, 0.3, seed=seed).size() > 0

    def test_tiny_eps_takes_everyone(self):
        net = sample_density_net(20, 0.01, seed=1)
        assert net.size() == 20  # p = 1

    def test_members_sorted_unique(self):
        net = sample_density_net(100, 0.2, seed=2)
        assert list(net.members) == sorted(set(net.members))

    def test_reproducible(self):
        assert sample_density_net(60, 0.25, seed=3).members == \
            sample_density_net(60, 0.25, seed=3).members

    def test_size_concentrates(self):
        # E|N| = 5 ln n / eps; check within factor ~2.5 at n=2000
        n, eps = 2000, 0.1
        net = sample_density_net(n, eps, seed=4)
        expected = 5 * math.log(n) / eps
        assert expected / 2.5 <= net.size() <= 2.5 * expected


class TestBallRadii:
    def test_monotone_in_eps(self, er_weighted, er_weighted_apsp):
        r_small = ball_radii(er_weighted_apsp, 0.1)
        r_big = ball_radii(er_weighted_apsp, 0.9)
        assert np.all(r_small <= r_big)

    def test_tiny_eps_radius_zero(self, er_weighted_apsp):
        # ceil(eps*n) = 1 -> the ball {u} itself suffices
        r = ball_radii(er_weighted_apsp, 1e-9)
        assert np.all(r == 0.0)

    def test_eps_one_is_eccentricity(self, er_weighted_apsp):
        r = ball_radii(er_weighted_apsp, 1.0)
        assert np.allclose(r, er_weighted_apsp.max(axis=1))

    def test_definition_exact(self, er_weighted_apsp):
        # |B(u, R(u, eps))| >= eps*n, and no smaller radius works
        eps = 0.3
        n = er_weighted_apsp.shape[0]
        need = math.ceil(eps * n)
        r = ball_radii(er_weighted_apsp, eps)
        for u in range(n):
            within = np.sum(er_weighted_apsp[u] <= r[u])
            assert within >= need
            strictly_within = np.sum(er_weighted_apsp[u] < r[u])
            assert strictly_within < need


class TestVerification:
    def test_lemma42_holds_whp(self, er_weighted, er_weighted_apsp):
        ok = 0
        trials = 20
        for seed in range(trials):
            net = sample_density_net(er_weighted.n, 0.25, seed=seed)
            rep = verify_density_net(er_weighted_apsp, net)
            ok += rep["coverage_ok"] and rep["size_ok"]
        assert ok >= trials - 2  # w.h.p., allow rare failures

    def test_report_fields(self, er_weighted_apsp):
        net = sample_density_net(er_weighted_apsp.shape[0], 0.25, seed=1)
        rep = verify_density_net(er_weighted_apsp, net)
        assert set(rep) >= {"coverage_ok", "size_ok", "size", "size_bound"}

    def test_full_net_always_valid(self, er_weighted_apsp):
        n = er_weighted_apsp.shape[0]
        net = DensityNet(eps=0.5, n=n, members=tuple(range(n)))
        rep = verify_density_net(er_weighted_apsp, net)
        assert rep["coverage_ok"]


class TestDistributedConstruction:
    def test_assignments_match_centralized(self, er_weighted,
                                           er_weighted_apsp):
        net, assignments, metrics = build_density_net_distributed(
            er_weighted, 0.3, seed=9)
        want = nearest_in_set_centralized(er_weighted_apsp, net.members)
        for (gd, gw), (wd, ww) in zip(assignments, want):
            assert gd == pytest.approx(wd)
            assert gw == ww
        assert metrics.rounds >= 1


class TestCDGOriginalNet:
    """The A2 ablation: original [CDG06] parameters."""

    def test_small_cardinality(self, er_weighted_apsp):
        net = cdg_original_net(er_weighted_apsp, 0.3)
        # ~1/eps nodes, far fewer than the sampled (10/eps) ln n
        assert net.size() <= math.ceil(1 / 0.3) + 2

    def test_2R_coverage(self, er_weighted_apsp):
        eps = 0.3
        net = cdg_original_net(er_weighted_apsp, eps)
        radii = ball_radii(er_weighted_apsp, eps)
        members = np.asarray(net.members)
        d_to_net = er_weighted_apsp[:, members].min(axis=1)
        assert np.all(d_to_net <= 2.0 * radii + 1e-9)
