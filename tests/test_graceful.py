"""Gracefully degrading sketches (repro.slack.graceful, Theorem 4.8)."""


import pytest

from repro.errors import ConfigError, QueryError
from repro.oracle.evaluation import average_stretch, eps_far_mask
from repro.slack.graceful import (
    build_graceful_centralized,
    build_graceful_distributed,
    graceful_schedule,
)


@pytest.fixture(scope="module")
def built(er_weighted, er_weighted_apsp):
    sketches, schedule = build_graceful_centralized(
        er_weighted, seed=81, dist_matrix=er_weighted_apsp)
    return sketches, schedule


class TestSchedule:
    def test_eps_powers_of_half(self):
        sched = graceful_schedule(64)
        assert [e for e, _ in sched] == [2.0 ** -i for i in range(1, 7)]

    def test_k_grows_logarithmically(self):
        sched = graceful_schedule(64)
        assert [k for _, k in sched] == [1, 2, 3, 4, 5, 6]

    def test_final_eps_at_most_1_over_n(self):
        for n in (10, 33, 64, 100):
            sched = graceful_schedule(n)
            assert sched[-1][0] <= 1.0 / n

    def test_tiny_n_rejected(self):
        with pytest.raises(ConfigError):
            graceful_schedule(1)


class TestStructure:
    def test_component_count(self, built, er_weighted):
        sketches, schedule = built
        assert all(len(s.components) == len(schedule) for s in sketches)

    def test_size_is_sum_of_components(self, built):
        sketches, _ = built
        s = sketches[0]
        assert s.size_words() == sum(c.size_words() for c in s.components)

    def test_mismatched_sketches_rejected(self, built):
        from repro.slack.graceful import GracefulSketch

        sketches, _ = built
        stub = GracefulSketch(node=99, components=sketches[0].components[:1])
        with pytest.raises(QueryError):
            sketches[1].estimate_to(stub)


class TestGuarantees:
    def test_never_underestimates(self, built, er_weighted_apsp):
        sketches, _ = built
        n = len(sketches)
        for u in range(n):
            for v in range(u + 1, n):
                assert sketches[u].estimate_to(sketches[v]) >= \
                    er_weighted_apsp[u, v] - 1e-9

    def test_worst_case_stretch_logarithmic(self, built, er_weighted_apsp):
        # Lemma 4.7 part 1: with eps < 1/n every pair is covered at
        # stretch 8*ceil(log2 n) - 1
        sketches, schedule = built
        n = len(sketches)
        bound = 8 * len(schedule) - 1
        for u in range(n):
            for v in range(u + 1, n):
                assert sketches[u].estimate_to(sketches[v]) <= \
                    bound * er_weighted_apsp[u, v] + 1e-9

    def test_graceful_degradation_per_eps(self, built, er_weighted_apsp):
        # Theorem 4.8: for each eps_i, the single designated component
        # achieves stretch 8*k_i - 1 on eps_i-far pairs
        sketches, schedule = built
        n = len(sketches)
        for idx, (eps, k) in enumerate(schedule[:3]):
            far = eps_far_mask(er_weighted_apsp, eps)
            bound = 8 * k - 1
            for u in range(n):
                for v in range(u + 1, n):
                    if far[u, v] or far[v, u]:
                        est = sketches[u].estimate_for_eps(sketches[v], eps)
                        assert est <= bound * er_weighted_apsp[u, v] + 1e-9

    def test_min_estimate_beats_any_component(self, built):
        sketches, _ = built
        a, b = sketches[2], sketches[9]
        full = a.estimate_to(b)
        per = [c.estimate_to(o)
               for c, o in zip(a.components, b.components)]
        assert full == min(per)

    def test_average_stretch_small(self, built, er_weighted_apsp):
        # Corollary 4.9: O(1) average stretch; on these graphs the
        # measured value is tiny
        sketches, _ = built
        avg = average_stretch(er_weighted_apsp,
                              lambda u, v: sketches[u].estimate_to(sketches[v]))
        assert avg <= 3.0

    def test_same_node_zero(self, built):
        sketches, _ = built
        assert sketches[7].estimate_to(sketches[7]) == 0.0


class TestDistributedBuild:
    @pytest.mark.slow
    def test_matches_shape_and_guarantees(self, er_weighted,
                                          er_weighted_apsp):
        sketches, schedule, metrics = build_graceful_distributed(
            er_weighted, seed=82)
        assert metrics.rounds > 0
        n = er_weighted.n
        bound = 8 * len(schedule) - 1
        for u in range(0, n, 5):
            for v in range(u + 1, n, 3):
                est = sketches[u].estimate_to(sketches[v])
                assert er_weighted_apsp[u, v] - 1e-9 <= est
                assert est <= bound * er_weighted_apsp[u, v] + 1e-9
