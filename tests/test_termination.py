"""ECHO bookkeeping (repro.algorithms.termination) and the end-to-end
Section 3.3 detector inside the distributed TZ protocol."""

import pytest

from repro.algorithms.termination import EchoBookkeeper
from repro.errors import ProtocolError


class TestLedger:
    def test_rejected_message_owes_echo_immediately(self):
        bk = EchoBookkeeper(0, (1, 2))
        bk.on_rejected(src=7, a=3.0, via=1)
        assert bk.pop_owed(1) == (7, 3.0)
        assert bk.pop_owed(1) is None

    def test_superseded_update_owes_echo_to_old_parent(self):
        bk = EchoBookkeeper(0, (1, 2))
        bk.on_superseded(src=7, parent=(2, 5.0))
        assert bk.pop_owed(2) == (7, 5.0)

    def test_superseded_source_injection_owes_nothing(self):
        bk = EchoBookkeeper(0, (1, 2))
        bk.on_superseded(src=0, parent=None)
        assert not bk.has_owed()

    def test_broadcast_settles_after_all_echoes(self):
        bk = EchoBookkeeper(0, (1, 2, 3))
        bk.on_sent(src=7, dist=4.0, parent=(1, 3.0))
        bk.receive_echo(2, 7, 4.0)
        bk.receive_echo(3, 7, 4.0)
        assert not bk.quiet()  # still waiting for 1's echo
        bk.receive_echo(1, 7, 4.0)
        # settled: now owes the parent echo
        assert bk.pop_owed(1) == (7, 3.0)
        assert bk.quiet()

    def test_origin_broadcast_triggers_completion(self):
        fired = []
        bk = EchoBookkeeper(5, (1, 2), on_complete=lambda: fired.append(True))
        bk.on_sent(src=5, dist=0.0, parent=None)
        bk.receive_echo(1, 5, 0.0)
        assert not fired
        bk.receive_echo(2, 5, 0.0)
        assert fired == [True]

    def test_no_neighbors_settles_immediately(self):
        fired = []
        bk = EchoBookkeeper(5, (), on_complete=lambda: fired.append(True))
        bk.on_sent(src=5, dist=0.0, parent=None)
        assert fired == [True]

    def test_concurrent_broadcasts_tracked_independently(self):
        bk = EchoBookkeeper(0, (1,))
        bk.on_sent(src=7, dist=4.0, parent=(1, 3.0))
        bk.on_sent(src=7, dist=2.0, parent=(1, 1.0))  # improved later
        bk.receive_echo(1, 7, 2.0)
        assert bk.pop_owed(1) == (7, 1.0)
        bk.receive_echo(1, 7, 4.0)
        assert bk.pop_owed(1) == (7, 3.0)

    def test_duplicate_broadcast_key_rejected(self):
        bk = EchoBookkeeper(0, (1,))
        bk.on_sent(src=7, dist=4.0, parent=None)
        with pytest.raises(ProtocolError, match="duplicate"):
            bk.on_sent(src=7, dist=4.0, parent=None)

    def test_unexpected_echo_rejected(self):
        bk = EchoBookkeeper(0, (1, 2))
        with pytest.raises(ProtocolError, match="unexpected echo"):
            bk.receive_echo(1, 9, 1.0)

    def test_double_echo_from_same_neighbor_rejected(self):
        bk = EchoBookkeeper(0, (1, 2))
        bk.on_sent(src=7, dist=4.0, parent=None)
        bk.receive_echo(1, 7, 4.0)
        with pytest.raises(ProtocolError, match="unexpected echo"):
            bk.receive_echo(1, 7, 4.0)

    def test_owed_edges_lists_creditors(self):
        bk = EchoBookkeeper(0, (1, 2, 3))
        bk.on_rejected(7, 1.0, 1)
        bk.on_rejected(8, 2.0, 3)
        assert sorted(bk.owed_edges()) == [1, 3]

    def test_counters(self):
        bk = EchoBookkeeper(0, (1,))
        bk.on_rejected(7, 1.0, 1)
        bk.pop_owed(1)
        bk.on_sent(7, 2.0, None)
        bk.receive_echo(1, 7, 2.0)
        assert bk.echoes_sent == 1
        assert bk.echoes_received == 1


class TestEndToEndDetector:
    """The detector embedded in the echo-mode TZ run (integration)."""

    def test_echo_messages_double_data_at_most(self, er_unit):
        from repro.congest.tracing import Tracer
        from repro.congest.network import Simulator
        from repro.tz.distributed import TZEchoProgram, DATA, ECHO
        from repro.tz.hierarchy import sample_hierarchy

        h = sample_hierarchy(er_unit.n, 2, seed=3)
        tracer = Tracer()
        sim = Simulator(
            er_unit,
            lambda u: TZEchoProgram(u, er_unit.n, 2, int(h.level[u])),
            seed=4, tracer=tracer)
        sim.run()
        n_data = sum(1 for _ in tracer.of_kind(DATA))
        n_echo = sum(1 for _ in tracer.of_kind(ECHO))
        # exactly one echo per data message — the paper's 2x claim
        assert n_echo == n_data

    def test_echoes_travel_reverse_to_data(self, small_ring):
        from repro.congest.tracing import Tracer
        from repro.congest.network import Simulator
        from repro.tz.distributed import TZEchoProgram, DATA, ECHO
        from repro.tz.hierarchy import sample_hierarchy

        g = small_ring
        h = sample_hierarchy(g.n, 2, seed=5)
        tracer = Tracer()
        sim = Simulator(g, lambda u: TZEchoProgram(u, g.n, 2, int(h.level[u])),
                        seed=6, tracer=tracer)
        sim.run()
        data_edges = {(ev.src, ev.dst, ev.payload[2], ev.payload[3])
                      for ev in tracer.of_kind(DATA)}
        for ev in tracer.of_kind(ECHO):
            # each echo quotes a data message that crossed the same edge
            # in the opposite direction earlier
            assert (ev.dst, ev.src, ev.payload[2], ev.payload[3]) in data_edges
