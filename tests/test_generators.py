"""Topology generators (repro.graphs.generators)."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barabasi_albert,
    caterpillar,
    complete_graph,
    erdos_renyi,
    from_networkx,
    grid2d,
    hop_diameter,
    path_graph,
    random_geometric,
    ring,
    shortest_path_diameter,
    star_path,
    tree_graph,
)


class TestErdosRenyi:
    def test_connected(self):
        for seed in range(5):
            assert erdos_renyi(50, seed=seed).is_connected()

    def test_seed_reproducible(self):
        a, b = erdos_renyi(30, seed=7), erdos_renyi(30, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert erdos_renyi(30, seed=1) != erdos_renyi(30, seed=2)

    def test_p_zero_still_connected_via_repair(self):
        g = erdos_renyi(10, p=0.0, seed=3)
        assert g.is_connected()
        assert g.m == 9  # exactly a spanning structure

    def test_p_validation(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, p=1.5)

    def test_density_scales_with_p(self):
        sparse = erdos_renyi(60, p=0.05, seed=4)
        dense = erdos_renyi(60, p=0.5, seed=4)
        assert dense.m > sparse.m


class TestStructured:
    def test_grid_dimensions(self):
        g = grid2d(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # (cols-1)*rows + (rows-1)*cols

    def test_grid_hop_diameter(self):
        assert hop_diameter(grid2d(3, 4)) == (3 - 1) + (4 - 1)

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            grid2d(0, 3)

    def test_ring_structure(self):
        g = ring(8)
        assert g.m == 8
        assert all(g.degree(u) == 2 for u in g.nodes())

    def test_ring_diameter(self):
        assert hop_diameter(ring(8)) == 4

    def test_ring_minimum_size(self):
        with pytest.raises(GraphError):
            ring(2)

    def test_path(self):
        g = path_graph(6)
        assert g.m == 5
        assert hop_diameter(g) == 5

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert hop_diameter(g) == 1

    def test_tree(self):
        g = tree_graph(7, branching=2)
        assert g.m == 6
        assert g.is_connected()


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        g = barabasi_albert(60, m_attach=2, seed=5)
        assert g.is_connected()
        assert g.n == 60

    def test_has_hubs(self):
        g = barabasi_albert(120, m_attach=2, seed=6)
        degrees = sorted(g.degree(u) for u in g.nodes())
        # preferential attachment should produce a heavy right tail
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_reproducible(self):
        assert barabasi_albert(40, seed=8) == barabasi_albert(40, seed=8)


class TestGeometric:
    def test_connected(self):
        assert random_geometric(50, seed=9).is_connected()

    def test_weights_reflect_geometry(self):
        g = random_geometric(50, seed=10)
        ws = [w for _, _, w in g.edges()]
        assert min(ws) >= 1.0
        assert len(set(ws)) > 1  # genuinely heterogeneous


class TestPathological:
    def test_star_path_separates_S_from_D(self):
        g = star_path(20)
        assert hop_diameter(g) == 2
        assert shortest_path_diameter(g) == 19

    def test_star_path_min_size(self):
        with pytest.raises(GraphError):
            star_path(1)

    def test_caterpillar_counts(self):
        g = caterpillar(spine=5, legs_per_node=2)
        assert g.n == 5 + 10
        assert g.is_connected()

    def test_caterpillar_heavy_spine(self):
        g = caterpillar(spine=6, legs_per_node=1, spine_weight=100.0)
        assert g.weight(0, 1) == 100.0


class TestFromNetworkx:
    def test_round_trip(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_weighted_edges_from([("a", "b", 2.0), ("b", "c", 3.0)])
        g = from_networkx(nxg)
        assert g.n == 3
        assert g.weight(0, 1) == 2.0  # a-b after sorted relabeling

    def test_default_weight_is_one(self):
        import networkx as nx

        nxg = nx.path_graph(4)
        g = from_networkx(nxg)
        assert all(w == 1.0 for _, _, w in g.edges())
