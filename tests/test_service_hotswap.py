"""Epoch-stamped hot swap under load (QueryEngine.apply_updates).

The contract: a batch issued mid-update completes against **exactly one
epoch** — it either sees the whole old index or the whole new one, never
a torn mix — for in-process serving (``jobs=1``) and the pooled
shared-memory data plane (``jobs=4``).  The old epoch's server (pool +
segments) is released once its last in-flight batch drains, so repeated
updates cannot leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graphs import assign_uniform_weights, erdos_renyi
from repro.service import (QueryEngine, UpdateableIndex,
                           sample_query_pairs, sample_weight_changes)
from repro.service.buffers import live_segment_names

EPOCHS = 3


@pytest.fixture()
def updateable():
    g = assign_uniform_weights(erdos_renyi(40, seed=101), seed=17)
    return UpdateableIndex(g, scheme="tz", seed=5, k=2, num_shards=4,
                           rebuild_threshold=1.0)


def _epoch_references(updateable, pairs):
    """The full answer vector of each epoch, computed inline (no engine)
    while replaying the same change batches the test applies."""
    refs = [updateable.index.estimate_many(pairs[:, 0], pairs[:, 1])]
    batches = []
    for i in range(EPOCHS):
        changes = sample_weight_changes(updateable.graph, 3, seed=900 + i,
                                        low=0.1, high=0.4)
        batches.append(changes)
        updateable.apply(changes)
        refs.append(updateable.index.estimate_many(pairs[:, 0], pairs[:, 1]))
    return refs, batches


@pytest.mark.parametrize("jobs", [1, 4])
def test_batch_mid_update_sees_exactly_one_epoch(updateable, jobs):
    g = updateable.graph.copy()
    pairs = sample_query_pairs(g.n, 400, seed=3)
    # replay on a twin to learn each epoch's expected answers up front
    twin = UpdateableIndex(g, scheme="tz", seed=5, k=2, num_shards=4,
                           rebuild_threshold=1.0)
    refs, batches = _epoch_references(twin, pairs)
    ref_bytes = {r.tobytes() for r in refs}
    assert len(ref_bytes) == EPOCHS + 1  # every epoch answers differently

    engine = QueryEngine.from_updateable(updateable, cache_size=0,
                                         jobs=jobs, memory="shared")
    results: list[bytes] = []
    stop = threading.Event()
    failures: list[Exception] = []

    def hammer():
        try:
            while not stop.is_set():
                results.append(
                    np.asarray(engine.dist_many(pairs)).tobytes())
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    try:
        thread = threading.Thread(target=hammer)
        thread.start()
        planes = [engine._server.data_plane()]
        for changes in batches:
            report = engine.apply_updates(changes)
            assert report.mode in ("repair", "rebuild")
            planes.append(engine._server.data_plane())
        stop.set()
        thread.join()
        assert not failures, failures[0]
        # every mid-flight batch matched one epoch wholesale
        assert results, "hammer thread never completed a batch"
        for got in results:
            assert got in ref_bytes
        # after the last swap the engine serves the final epoch
        assert engine.epoch == EPOCHS
        assert engine.dist_many(pairs).tobytes() == refs[-1].tobytes()
        # each epoch's workers attach to their own shared segment
        segs = [p["pack_segment"] for p in planes]
        assert len(set(segs)) == EPOCHS + 1
        # retired epochs drained: nothing left pending but the live one
        assert not engine._retired
        live = set(live_segment_names())
        assert segs[-1] in live
        assert not (set(segs[:-1]) & live)  # old packs unlinked
    finally:
        stop.set()
        engine.close()


def test_thread_plane_stream_mid_update_sees_exactly_one_epoch(updateable):
    """``pool="thread"`` epoch swaps are torn-read-free: a concurrent
    ``dist_stream`` is wholly served by the epoch it pinned at first
    pull, and retiring an epoch shuts its executor down (no leaked
    ``repro-shard`` threads)."""
    from repro.service.workers import THREAD_POOL_PREFIX

    g = updateable.graph.copy()
    pairs = sample_query_pairs(g.n, 400, seed=3)
    twin = UpdateableIndex(g, scheme="tz", seed=5, k=2, num_shards=4,
                           rebuild_threshold=1.0)
    refs, batches = _epoch_references(twin, pairs)
    ref_bytes = {r.tobytes() for r in refs}
    assert len(ref_bytes) == EPOCHS + 1

    engine = QueryEngine.from_updateable(updateable, cache_size=0,
                                         jobs=4, pool="thread")
    chunks = [pairs[lo:lo + 100] for lo in range(0, 400, 100)]
    results: list[bytes] = []
    stop = threading.Event()
    failures: list[Exception] = []

    def hammer():
        try:
            while not stop.is_set():
                out = np.concatenate(list(engine.dist_stream(chunks)))
                results.append(out.tobytes())
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    try:
        thread = threading.Thread(target=hammer)
        thread.start()
        for changes in batches:
            report = engine.apply_updates(changes)
            assert report.mode in ("repair", "rebuild")
        stop.set()
        thread.join()
        assert not failures, failures[0]
        assert results, "hammer thread never completed a stream"
        for got in results:
            assert got in ref_bytes  # one epoch wholesale, never torn
        assert engine.epoch == EPOCHS
        assert engine.dist_many(pairs).tobytes() == refs[-1].tobytes()
        assert not engine._retired  # old epochs (and executors) drained
    finally:
        stop.set()
        engine.close()
    leaked = [t.name for t in threading.enumerate()
              if t.name.startswith(THREAD_POOL_PREFIX)]
    assert leaked == []


def test_epoch_swap_invalidates_cache(updateable):
    engine = QueryEngine.from_updateable(updateable, cache_size=1024)
    try:
        pairs = sample_query_pairs(updateable.graph.n, 64, seed=1)
        before = engine.dist_many(pairs)
        assert engine.dist_many(pairs).tolist() == before.tolist()
        assert engine.stats.hits >= len(pairs)  # served from cache
        changes = sample_weight_changes(updateable.graph, 3, seed=901,
                                        low=0.1, high=0.4)
        engine.apply_updates(changes)
        after = engine.dist_many(pairs)
        want = updateable.index.estimate_many(pairs[:, 0], pairs[:, 1])
        assert after.tolist() == want.tolist()  # no stale cache hits
        assert before.tolist() != after.tolist()
    finally:
        engine.close()


def test_noop_update_keeps_epoch_and_server(updateable):
    from repro.service.updates import EdgeChange

    engine = QueryEngine.from_updateable(updateable, cache_size=0)
    try:
        server = engine._server
        # a weight increase on a non-shortest-path edge dirties nobody
        u, v, w = max(updateable.graph.edges(), key=lambda e: e[2])
        report = engine.apply_updates([EdgeChange("increase", u, v,
                                                  w * 10)])
        if report.mode == "noop":  # depends on the drawn graph
            assert engine.epoch == 0 and engine._server is server
        else:
            assert engine.epoch == 1 and engine._server is not server
    finally:
        engine.close()


def test_apply_updates_requires_updateable_engine(updateable):
    from repro.service.updates import EdgeChange

    engine = QueryEngine.from_index(updateable.index, cache_size=0)
    try:
        with pytest.raises(ConfigError, match="from_updateable"):
            engine.apply_updates([EdgeChange("set", 0, 1, 1.0)])
    finally:
        engine.close()
