"""Distributed single-source Bellman-Ford (Algorithm 1)."""


import numpy as np
import pytest

from repro.algorithms import single_source_distances
from repro.graphs import Graph, apsp, path_graph, shortest_path_diameter


class TestCorrectness:
    def test_path(self):
        dists, parents, _ = single_source_distances(path_graph(5), 0)
        assert dists == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert parents[1:] == [0, 1, 2, 3]

    def test_weighted_detour(self, weighted_diamond):
        dists, _, _ = single_source_distances(weighted_diamond, 0)
        assert dists[3] == 2.0  # 0-1-3 beats the weight-10 direct edge

    def test_matches_apsp_on_random_graphs(self, er_weighted):
        d = apsp(er_weighted)
        for src in (0, 7, er_weighted.n - 1):
            dists, _, _ = single_source_distances(er_weighted, src)
            assert np.allclose(dists, d[src])

    def test_heavy_tailed_weights(self, er_heavy):
        d = apsp(er_heavy)
        dists, _, _ = single_source_distances(er_heavy, 3)
        assert np.allclose(dists, d[3])

    def test_parents_form_shortest_path_tree(self, er_weighted):
        d = apsp(er_weighted)
        src = 5
        dists, parents, _ = single_source_distances(er_weighted, src)
        for v in er_weighted.nodes():
            if v == src:
                assert parents[v] is None
                continue
            p = parents[v]
            assert d[src, v] == pytest.approx(
                d[src, p] + er_weighted.weight(p, v))


class TestComplexity:
    def test_rounds_bounded_by_S_times_constant(self, er_weighted):
        S = shortest_path_diameter(er_weighted)
        _, _, metrics = single_source_distances(er_weighted, 0)
        # Algorithm 1 quiesces within O(S) rounds (constant ~ 1 here: one
        # improvement wave per hop, +1 absorb round)
        assert metrics.rounds <= S + 2

    def test_source_alone_is_trivial(self):
        g = Graph(2, [(0, 1, 1.0)])
        dists, _, metrics = single_source_distances(g, 1)
        assert dists == [1.0, 0.0]
        assert metrics.rounds <= 3
