"""Multi-process shard serving (repro.service.workers).

The acceptance bar: for every scheme, ``ShardServer`` answers are
bit-identical for ``jobs=1`` (in-process decomposition) and ``jobs=4``
(real worker pool), and both equal the plain ``estimate_many`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_sketches
from repro.errors import ConfigError, QueryError
from repro.service import (QueryEngine, ShardServer, build_index,
                           sample_query_pairs)
from repro.tz import build_tz_sketches_centralized


@pytest.fixture(scope="module")
def built_sets(er_weighted, er_unit):
    tz, _ = build_tz_sketches_centralized(er_weighted, k=3, seed=11)
    return {
        "tz": tz,
        "stretch3": build_sketches(er_unit, scheme="stretch3", eps=0.3,
                                   seed=2).sketches,
        "cdg": build_sketches(er_unit, scheme="cdg", eps=0.3, k=2,
                              seed=3).sketches,
        "graceful": build_sketches(er_unit, scheme="graceful",
                                   seed=4).sketches,
    }


SCHEMES = ["tz", "stretch3", "cdg", "graceful"]


class TestShardServerIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_jobs_1_equals_jobs_4_equals_inline(self, built_sets, scheme):
        sketches = built_sets[scheme]
        index = build_index(sketches, num_shards=4)
        pairs = sample_query_pairs(len(sketches), 300, seed=7)
        us, vs = pairs[:, 0], pairs[:, 1]
        want = index.estimate_many(us, vs)
        with ShardServer(index, jobs=1) as inproc:
            got1 = inproc.estimate_many(us, vs)
        with ShardServer(index, jobs=4) as pooled:
            got4 = pooled.estimate_many(us, vs)
            again = pooled.estimate_many(us, vs)  # pool is reusable
        assert got1.tolist() == want.tolist()  # exact, not approx
        assert got4.tolist() == want.tolist()
        assert again.tolist() == want.tolist()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_engine_jobs_matches_reference(self, built_sets, scheme):
        sketches = built_sets[scheme]
        pairs = sample_query_pairs(len(sketches), 100, seed=9)
        with QueryEngine(sketches, cache_size=0, num_shards=3,
                         jobs=3) as engine:
            got = engine.dist_many(pairs)
            single = [engine.reference_query(int(u), int(v))
                      for u, v in pairs]
        assert got.tolist() == single

    def test_dist_many_front_end(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        with ShardServer(index, jobs=2) as srv:
            got = srv.dist_many([(0, 5), (5, 0), (3, 3)])
            assert got.tolist() == [index.estimate(0, 5),
                                    index.estimate(5, 0), 0.0]
            assert srv.dist_many(np.empty((0, 2), dtype=np.int64)).size == 0
            with pytest.raises(ConfigError):
                srv.dist_many(np.arange(6))


class TestThreadPlane:
    """The ``pool="thread"`` execution plane: a GIL-releasing
    ThreadPoolExecutor sharing the master's address space — no pickling,
    no rings, no attach — with byte-identical answers."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("memory", ["heap", "shared"])
    def test_thread_jobs_match_inline(self, built_sets, scheme, memory):
        sketches = built_sets[scheme]
        index = build_index(sketches, num_shards=4)
        pairs = sample_query_pairs(len(sketches), 300, seed=17)
        us, vs = pairs[:, 0], pairs[:, 1]
        want = index.estimate_many(us, vs)
        with ShardServer(index, jobs=4, memory=memory,
                         pool="thread") as srv:
            got = srv.estimate_many(us, vs)
            again = srv.estimate_many(us, vs)  # executor is reusable
        assert got.tolist() == want.tolist()  # exact, not approx
        assert again.tolist() == want.tolist()

    def test_thread_plane_has_no_pool_and_no_rings(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=4)
        with ShardServer(index, jobs=4, pool="thread") as srv:
            assert srv._pool is None and srv._executor is not None
            assert not srv.ring_dispatch  # re-entrant: no serializing
            plane = srv.data_plane()
            assert plane["pool"] == "thread"
            srv.estimate_many(np.array([0, 1]), np.array([1, 0]))
            assert srv._req_ring is None  # never allocated
            assert srv._resp_ring is None

    def test_close_shuts_the_executor_down(self, built_sets):
        import threading

        from repro.service.workers import THREAD_POOL_PREFIX

        index = build_index(built_sets["tz"], num_shards=2)
        srv = ShardServer(index, jobs=2, pool="thread")
        srv.estimate_many(np.array([0]), np.array([1]))
        srv.close()
        srv.close()  # idempotent
        leaked = [t.name for t in threading.enumerate()
                  if t.name.startswith(THREAD_POOL_PREFIX)]
        assert leaked == []

    def test_rejects_unknown_pool(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        with pytest.raises(ConfigError, match="pool"):
            ShardServer(index, jobs=2, pool="fiber")

    def test_kernel_timing_accumulates(self, built_sets):
        index = build_index(built_sets["stretch3"], num_shards=4)
        pairs = sample_query_pairs(index.n, 400, seed=23)
        with ShardServer(index, jobs=4, pool="thread") as srv:
            srv.estimate_many(pairs[:, 0], pairs[:, 1])
            tm = srv.timings
            assert tm.kernel > 0.0
            # the critical path is never longer than the shard total
            assert tm.kernel <= tm.shard_answer + 1e-12
            assert "kernel_seconds" in tm.as_dict()

    def test_stream_overlaps_on_the_thread_plane(self, built_sets):
        index = build_index(built_sets["cdg"], num_shards=4)
        pairs = sample_query_pairs(index.n, 600, seed=29)
        batches = [(pairs[lo:lo + 150, 0], pairs[lo:lo + 150, 1])
                   for lo in range(0, 600, 150)]
        with ShardServer(index, jobs=4, pool="thread") as srv:
            want = [srv.estimate_many(us, vs).tolist()
                    for us, vs in batches]
            srv.reset_timings()
            got = [out.tolist() for out in srv.estimate_stream(batches)]
            assert srv.timings.overlap > 0.0
        assert got == want

    def test_query_error_propagates_through_threads(self):
        from repro.graphs import Graph

        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        index = build_index(sketches, num_shards=2)
        with ShardServer(index, jobs=2, pool="thread") as srv:
            assert srv.estimate_many(np.array([2]), np.array([4])).size == 1
            with pytest.raises(QueryError):
                srv.estimate_many(np.array([0]), np.array([2]))


class TestShardServerLifecycle:
    def test_jobs_clamped_to_shard_count(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        srv = ShardServer(index, jobs=8)
        try:
            assert srv.jobs == 2
        finally:
            srv.close()

    def test_single_shard_stays_in_process(self, built_sets):
        srv = ShardServer(build_index(built_sets["tz"], num_shards=1),
                          jobs=4)
        assert srv._pool is None  # nothing to fan out
        srv.close()

    def test_close_is_idempotent(self, built_sets):
        srv = ShardServer(build_index(built_sets["tz"], num_shards=2),
                          jobs=2)
        srv.close()
        srv.close()

    def test_rejects_bad_jobs(self, built_sets):
        index = build_index(built_sets["tz"])
        with pytest.raises(ConfigError):
            ShardServer(index, jobs=0)
        with pytest.raises(ConfigError):
            QueryEngine(built_sets["tz"], jobs=0)

    def test_engine_jobs_requires_an_index(self, built_sets):
        with pytest.raises(ConfigError):
            QueryEngine(built_sets["tz"], use_index=False, jobs=2)

    def test_engine_close_is_idempotent(self, built_sets):
        engine = QueryEngine(built_sets["tz"], num_shards=2, jobs=2)
        engine.close()
        engine.close()


class TestEstimateStream:
    """The double-buffered pipelined path: batch k+1's plan/encode
    overlaps batch k's probes — and never changes a single byte."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("memory", ["heap", "shared"])
    def test_stream_equals_per_batch_estimates(self, built_sets, scheme,
                                               memory):
        sketches = built_sets[scheme]
        index = build_index(sketches, num_shards=4)
        pairs = sample_query_pairs(len(sketches), 600, seed=13)
        batches = [(pairs[lo:lo + 150, 0], pairs[lo:lo + 150, 1])
                   for lo in range(0, 600, 150)]
        with ShardServer(index, jobs=4, memory=memory) as srv:
            want = [srv.estimate_many(us, vs).tolist()
                    for us, vs in batches]
            srv.reset_timings()
            got = [out.tolist() for out in srv.estimate_stream(batches)]
            timings = srv.timings
        assert got == want  # exact floats, exact batch order
        assert timings.batches == len(batches)
        # batches 2..k planned while a predecessor was in flight
        assert timings.overlap > 0.0

    def test_stream_handles_empty_batches_in_order(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        empty = np.empty(0, dtype=np.int64)
        batches = [(np.array([0, 5]), np.array([5, 0])), (empty, empty),
                   (np.array([3]), np.array([4]))]
        with ShardServer(index, jobs=2, memory="shared") as srv:
            sizes = [out.size for out in srv.estimate_stream(batches)]
        assert sizes == [2, 0, 1]

    def test_stream_in_process_has_no_overlap(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        pairs = sample_query_pairs(index.n, 100, seed=3)
        batches = [(pairs[:50, 0], pairs[:50, 1]),
                   (pairs[50:, 0], pairs[50:, 1])]
        with ShardServer(index, jobs=1) as srv:
            want = np.concatenate([srv.estimate_many(us, vs)
                                   for us, vs in batches])
            srv.reset_timings()
            got = np.concatenate(list(srv.estimate_stream(batches)))
            assert srv.timings.overlap == 0.0
        assert got.tolist() == want.tolist()

    def test_stream_survives_ring_growth(self, built_sets):
        # a tiny batch first (small rings), then a much bigger one that
        # forces a request-ring grow mid-stream: the server must drain
        # the in-flight batch before reallocating, never corrupt answers
        index = build_index(built_sets["stretch3"], num_shards=4)
        big = sample_query_pairs(index.n, 4096, seed=5)
        batches = [(np.array([0, 1]), np.array([1, 0])),
                   (big[:, 0], big[:, 1]),
                   (np.array([2]), np.array([3]))]
        with ShardServer(index, jobs=4, memory="shared",
                         ring_slots=2) as srv:
            want = [srv.estimate_many(us, vs).tolist()
                    for us, vs in batches]
            got = [out.tolist() for out in srv.estimate_stream(batches)]
        assert got == want

    def test_stream_abandoned_midway_drains_cleanly(self, built_sets):
        # a consumer that breaks out of the stream leaves one submitted
        # batch in flight; the generator's cleanup must collect exactly
        # that batch (not re-collect the yielded one) so the server
        # stays balanced and keeps answering
        index = build_index(built_sets["tz"], num_shards=2)
        pairs = sample_query_pairs(index.n, 300, seed=9)
        batches = [(pairs[i * 100:(i + 1) * 100, 0],
                    pairs[i * 100:(i + 1) * 100, 1]) for i in range(3)]
        with ShardServer(index, jobs=2, memory="shared") as srv:
            want = [srv.estimate_many(us, vs).tolist()
                    for us, vs in batches]
            stream = srv.estimate_stream(batches)
            first = next(stream)
            stream.close()  # abandon with batch 1 submitted, uncollected
            assert srv._inflight == 0
            assert first.tolist() == want[0]
            # the server still serves, sequentially and streamed
            assert srv.estimate_many(*batches[2]).tolist() == want[2]
            again = [out.tolist()
                     for out in srv.estimate_stream(batches)]
            assert again == want

    def test_engine_dist_stream_matches_dist_many(self, built_sets):
        pairs = sample_query_pairs(len(built_sets["cdg"]), 300, seed=21)
        chunks = [pairs[lo:lo + 100] for lo in range(0, 300, 100)]
        with QueryEngine(built_sets["cdg"], cache_size=0, num_shards=3,
                         jobs=3, memory="shared") as engine:
            want = np.concatenate([engine.dist_many(c) for c in chunks])
            got = np.concatenate(list(engine.dist_stream(chunks)))
            phases = engine.phase_timings()
        assert got.tolist() == want.tolist()
        assert "overlap_seconds" in phases


class TestGCBackstop:
    """ShardServer.__del__ must release everything close() would — even
    for a server that was never dispatched, or whose construction
    failed halfway (the pack-segment leak the attribute-existence
    ordering used to cause)."""

    def test_drop_without_dispatch_releases_segments(self, built_sets):
        import gc

        from repro.service.buffers import live_segment_names

        index = build_index(built_sets["tz"], num_shards=2)
        srv = ShardServer(index, jobs=2, memory="shared")
        seg = srv.data_plane()["pack_segment"]
        assert seg in live_segment_names()
        del srv  # no dispatch ever happened: rings were never allocated
        gc.collect()
        assert seg not in live_segment_names()

    def test_failed_construction_releases_the_pack(self, built_sets,
                                                   monkeypatch):
        import gc

        from repro.service.buffers import live_segment_names

        index = build_index(built_sets["tz"], num_shards=2)
        before = set(live_segment_names())

        def boom(_packed):
            raise RuntimeError("attach exploded")

        monkeypatch.setattr("repro.service.workers.index_from_pack", boom)
        with pytest.raises(RuntimeError, match="attach exploded"):
            ShardServer(index, jobs=2, memory="shared")
        gc.collect()
        # the half-built server's pack segment was unlinked by __del__
        assert set(live_segment_names()) == before

    def test_close_after_close_after_del_path(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        srv = ShardServer(index, jobs=1, memory="shared")
        srv.close()
        srv.close()  # idempotent
        srv.__del__()  # and safe after close


class TestShardServerErrors:
    def test_query_error_propagates_through_workers(self):
        from repro.graphs import Graph

        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        index = build_index(sketches, num_shards=2)
        with ShardServer(index, jobs=2) as srv:
            # same-component pairs answer fine...
            assert srv.estimate_many(np.array([2]), np.array([4])).size == 1
            # ...cross-component pairs raise exactly like the inline path
            with pytest.raises(QueryError):
                srv.estimate_many(np.array([0]), np.array([2]))


class TestBuiltSketchesJobs:
    def test_engine_rebuilds_on_jobs_change(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)
        base = built.engine(cache_size=0, num_shards=2)
        fanned = built.engine(cache_size=0, num_shards=2, jobs=2)
        assert fanned is not base
        pairs = [(0, 9), (9, 0), (4, 4)]
        assert fanned.dist_many(pairs).tolist() == [
            built.query(u, v) for u, v in pairs]
        built.engine().close()


class TestEffectiveJobsReporting:
    def test_engine_and_report_show_clamped_jobs(self, built_sets):
        from repro.service import run_serve_benchmark

        # shards=1 clamps a 4-worker request to in-process serving; the
        # engine attribute and the benchmark report must say so
        with QueryEngine(built_sets["tz"], num_shards=1, jobs=4) as eng:
            assert eng.jobs == 1
        rep = run_serve_benchmark(built_sets["tz"], queries=50, repeats=1,
                                  num_shards=1, jobs=4)
        assert rep["jobs"] == 1 and rep["shards"] == 1
        rep = run_serve_benchmark(built_sets["tz"], queries=50, repeats=1,
                                  num_shards=4, jobs=2)
        assert rep["jobs"] == 2
