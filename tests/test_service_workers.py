"""Multi-process shard serving (repro.service.workers).

The acceptance bar: for every scheme, ``ShardServer`` answers are
bit-identical for ``jobs=1`` (in-process decomposition) and ``jobs=4``
(real worker pool), and both equal the plain ``estimate_many`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_sketches
from repro.errors import ConfigError, QueryError
from repro.service import (QueryEngine, ShardServer, build_index,
                           sample_query_pairs)
from repro.tz import build_tz_sketches_centralized


@pytest.fixture(scope="module")
def built_sets(er_weighted, er_unit):
    tz, _ = build_tz_sketches_centralized(er_weighted, k=3, seed=11)
    return {
        "tz": tz,
        "stretch3": build_sketches(er_unit, scheme="stretch3", eps=0.3,
                                   seed=2).sketches,
        "cdg": build_sketches(er_unit, scheme="cdg", eps=0.3, k=2,
                              seed=3).sketches,
        "graceful": build_sketches(er_unit, scheme="graceful",
                                   seed=4).sketches,
    }


SCHEMES = ["tz", "stretch3", "cdg", "graceful"]


class TestShardServerIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_jobs_1_equals_jobs_4_equals_inline(self, built_sets, scheme):
        sketches = built_sets[scheme]
        index = build_index(sketches, num_shards=4)
        pairs = sample_query_pairs(len(sketches), 300, seed=7)
        us, vs = pairs[:, 0], pairs[:, 1]
        want = index.estimate_many(us, vs)
        with ShardServer(index, jobs=1) as inproc:
            got1 = inproc.estimate_many(us, vs)
        with ShardServer(index, jobs=4) as pooled:
            got4 = pooled.estimate_many(us, vs)
            again = pooled.estimate_many(us, vs)  # pool is reusable
        assert got1.tolist() == want.tolist()  # exact, not approx
        assert got4.tolist() == want.tolist()
        assert again.tolist() == want.tolist()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_engine_jobs_matches_reference(self, built_sets, scheme):
        sketches = built_sets[scheme]
        pairs = sample_query_pairs(len(sketches), 100, seed=9)
        with QueryEngine(sketches, cache_size=0, num_shards=3,
                         jobs=3) as engine:
            got = engine.dist_many(pairs)
            single = [engine.reference_query(int(u), int(v))
                      for u, v in pairs]
        assert got.tolist() == single

    def test_dist_many_front_end(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        with ShardServer(index, jobs=2) as srv:
            got = srv.dist_many([(0, 5), (5, 0), (3, 3)])
            assert got.tolist() == [index.estimate(0, 5),
                                    index.estimate(5, 0), 0.0]
            assert srv.dist_many(np.empty((0, 2), dtype=np.int64)).size == 0
            with pytest.raises(ConfigError):
                srv.dist_many(np.arange(6))


class TestShardServerLifecycle:
    def test_jobs_clamped_to_shard_count(self, built_sets):
        index = build_index(built_sets["tz"], num_shards=2)
        srv = ShardServer(index, jobs=8)
        try:
            assert srv.jobs == 2
        finally:
            srv.close()

    def test_single_shard_stays_in_process(self, built_sets):
        srv = ShardServer(build_index(built_sets["tz"], num_shards=1),
                          jobs=4)
        assert srv._pool is None  # nothing to fan out
        srv.close()

    def test_close_is_idempotent(self, built_sets):
        srv = ShardServer(build_index(built_sets["tz"], num_shards=2),
                          jobs=2)
        srv.close()
        srv.close()

    def test_rejects_bad_jobs(self, built_sets):
        index = build_index(built_sets["tz"])
        with pytest.raises(ConfigError):
            ShardServer(index, jobs=0)
        with pytest.raises(ConfigError):
            QueryEngine(built_sets["tz"], jobs=0)

    def test_engine_jobs_requires_an_index(self, built_sets):
        with pytest.raises(ConfigError):
            QueryEngine(built_sets["tz"], use_index=False, jobs=2)

    def test_engine_close_is_idempotent(self, built_sets):
        engine = QueryEngine(built_sets["tz"], num_shards=2, jobs=2)
        engine.close()
        engine.close()


class TestShardServerErrors:
    def test_query_error_propagates_through_workers(self):
        from repro.graphs import Graph

        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        index = build_index(sketches, num_shards=2)
        with ShardServer(index, jobs=2) as srv:
            # same-component pairs answer fine...
            assert srv.estimate_many(np.array([2]), np.array([4])).size == 1
            # ...cross-component pairs raise exactly like the inline path
            with pytest.raises(QueryError):
                srv.estimate_many(np.array([0]), np.array([2]))


class TestBuiltSketchesJobs:
    def test_engine_rebuilds_on_jobs_change(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)
        base = built.engine(cache_size=0, num_shards=2)
        fanned = built.engine(cache_size=0, num_shards=2, jobs=2)
        assert fanned is not base
        pairs = [(0, 9), (9, 0), (4, 4)]
        assert fanned.dist_many(pairs).tolist() == [
            built.query(u, v) for u, v in pairs]
        built.engine().close()


class TestEffectiveJobsReporting:
    def test_engine_and_report_show_clamped_jobs(self, built_sets):
        from repro.service import run_serve_benchmark

        # shards=1 clamps a 4-worker request to in-process serving; the
        # engine attribute and the benchmark report must say so
        with QueryEngine(built_sets["tz"], num_shards=1, jobs=4) as eng:
            assert eng.jobs == 1
        rep = run_serve_benchmark(built_sets["tz"], queries=50, repeats=1,
                                  num_shards=1, jobs=4)
        assert rep["jobs"] == 1 and rep["shards"] == 1
        rep = run_serve_benchmark(built_sets["tz"], queries=50, repeats=1,
                                  num_shards=4, jobs=2)
        assert rep["jobs"] == 2
