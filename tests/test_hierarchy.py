"""Hierarchy sampling (repro.tz.hierarchy)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.tz import sample_hierarchy
from repro.tz.hierarchy import Hierarchy


class TestSampling:
    def test_k1_everyone_level_zero(self):
        h = sample_hierarchy(20, 1, seed=1)
        assert np.all(h.level == 0)
        assert h.A(0).size == 20
        assert h.A(1).size == 0

    def test_nesting(self):
        h = sample_hierarchy(200, 4, seed=2)
        for i in range(1, 4):
            assert set(h.A(i)) <= set(h.A(i - 1))

    def test_A0_is_everyone_by_default(self):
        h = sample_hierarchy(50, 3, seed=3)
        assert h.A(0).size == 50

    def test_top_level_nonempty(self):
        for seed in range(20):
            h = sample_hierarchy(30, 3, seed=seed)
            assert h.A(2).size > 0

    def test_exact_levels_partition_universe(self):
        h = sample_hierarchy(100, 3, seed=4)
        parts = [set(h.exact_level(i)) for i in range(3)]
        union = set().union(*parts)
        assert union == set(range(100))
        assert sum(len(p) for p in parts) == 100

    def test_beyond_k_is_empty(self):
        h = sample_hierarchy(50, 3, seed=5)
        assert h.A(3).size == 0
        assert h.A(99).size == 0

    def test_default_q_matches_paper(self):
        h = sample_hierarchy(64, 3, seed=6)
        assert h.q == pytest.approx(64 ** (-1 / 3))

    def test_sampling_rate_statistics(self):
        # |A_1| should concentrate near n * q
        n, k = 4000, 2
        h = sample_hierarchy(n, k, seed=7)
        expected = n * n ** (-1 / 2)
        assert 0.5 * expected <= h.A(1).size <= 2.0 * expected

    def test_reproducible(self):
        a = sample_hierarchy(60, 3, seed=8)
        b = sample_hierarchy(60, 3, seed=8)
        assert np.array_equal(a.level, b.level)


class TestUniverse:
    def test_restricted_universe(self):
        h = sample_hierarchy(50, 2, universe=[1, 5, 9], seed=9)
        assert set(h.universe()) == {1, 5, 9}
        assert h.level_of(0) == -1
        assert h.level_of(5) >= 0

    def test_default_q_uses_universe_size(self):
        h = sample_hierarchy(1000, 2, universe=range(16), seed=10)
        assert h.q == pytest.approx(16 ** (-1 / 2))

    def test_out_of_range_universe_rejected(self):
        with pytest.raises(ConfigError):
            sample_hierarchy(10, 2, universe=[5, 20])

    def test_empty_universe_rejected(self):
        with pytest.raises(ConfigError):
            sample_hierarchy(10, 2, universe=[])


class TestValidation:
    def test_k_zero_rejected(self):
        with pytest.raises(ConfigError):
            sample_hierarchy(10, 0)

    def test_bad_q_rejected(self):
        with pytest.raises(ConfigError):
            sample_hierarchy(10, 2, q=0.0)
        with pytest.raises(ConfigError):
            sample_hierarchy(10, 2, q=1.5)

    def test_q_one_puts_everyone_on_top(self):
        h = sample_hierarchy(10, 3, q=1.0, seed=11)
        assert np.all(h.level == 2)

    def test_sizes_helper(self):
        h = sample_hierarchy(40, 3, seed=12)
        sizes = h.sizes()
        assert sizes[0] == 40
        assert sizes == [h.A(i).size for i in range(3)]

    def test_level_array_shape_enforced(self):
        with pytest.raises(ConfigError):
            Hierarchy(n=5, k=2, q=0.5, level=np.zeros(4, dtype=np.int64))
