"""(ε,k)-CDG sketches (repro.slack.cdg, Theorem 4.6)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.oracle.evaluation import eps_far_mask
from repro.slack.cdg import (
    build_cdg_centralized,
    build_cdg_distributed,
    cdg_sampling_probability,
)
from repro.slack.density_net import sample_density_net
from repro.tz.hierarchy import sample_hierarchy

EPS, K = 0.25, 2


@pytest.fixture(scope="module")
def shared(er_weighted):
    net = sample_density_net(er_weighted.n, EPS, seed=71)
    h = sample_hierarchy(er_weighted.n, K,
                         q=cdg_sampling_probability(er_weighted.n, EPS, K),
                         universe=net.members, seed=72)
    return net, h


class TestSamplingProbability:
    def test_formula(self):
        q = cdg_sampling_probability(100, 0.1, 2)
        assert q == pytest.approx((10 / 0.1 * math.log(100)) ** -0.5)

    def test_clamped(self):
        assert cdg_sampling_probability(3, 1.0, 50) <= 1.0

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            cdg_sampling_probability(10, 0.5, 0)


class TestBuildEquivalence:
    def test_distributed_matches_centralized(self, er_weighted,
                                             er_weighted_apsp, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h,
                                         dist_matrix=er_weighted_apsp)
        ds, _, _, metrics = build_cdg_distributed(er_weighted, EPS, K,
                                                  net=net, hierarchy=h,
                                                  seed=73)
        for a, b in zip(cs, ds):
            assert a.gateway == b.gateway
            assert a.gateway_dist == pytest.approx(b.gateway_dist)
            assert a.label.pivots == b.label.pivots
            assert a.label.bunch == b.label.bunch
        assert metrics.rounds >= 1

    def test_gateway_is_nearest_net_node(self, er_weighted,
                                         er_weighted_apsp, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h,
                                         dist_matrix=er_weighted_apsp)
        members = np.asarray(net.members)
        for u, s in enumerate(cs):
            assert s.gateway in net.members
            assert s.gateway_dist == pytest.approx(
                er_weighted_apsp[u, members].min())

    def test_net_node_is_own_gateway(self, er_weighted, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h)
        for w in net.members:
            assert cs[w].gateway == w
            assert cs[w].gateway_dist == 0.0

    def test_labels_live_on_net_only(self, er_weighted, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h)
        net_set = set(net.members)
        for s in cs:
            assert s.label.node in net_set
            assert set(s.label.bunch) <= net_set


class TestGuarantees:
    def test_never_underestimates(self, er_weighted, er_weighted_apsp,
                                  shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h,
                                         dist_matrix=er_weighted_apsp)
        n = er_weighted.n
        for u in range(n):
            for v in range(u + 1, n):
                assert cs[u].estimate_to(cs[v]) >= \
                    er_weighted_apsp[u, v] - 1e-9

    def test_stretch_bound_on_far_pairs(self, er_weighted, er_weighted_apsp,
                                        shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h,
                                         dist_matrix=er_weighted_apsp)
        far = eps_far_mask(er_weighted_apsp, EPS)
        n = er_weighted.n
        bound = 8 * K - 1
        checked = 0
        for u in range(n):
            for v in range(u + 1, n):
                if far[u, v] or far[v, u]:
                    assert cs[u].estimate_to(cs[v]) <= \
                        bound * er_weighted_apsp[u, v] + 1e-9
                    checked += 1
        assert checked > 0

    def test_size_words_accounting(self, er_weighted, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h)
        s = cs[0]
        assert s.size_words() == 2 + s.label.size_words()

    def test_smaller_than_stretch3_for_small_eps(self):
        # the whole point of CDG: size sublinear in 1/eps.  The advantage
        # is asymptotic, so use a larger instance (centralized build is
        # cheap) where the net is a strict subset of V
        from repro.graphs import erdos_renyi
        from repro.slack.stretch3 import build_stretch3_centralized

        g = erdos_renyi(300, seed=75)
        eps = 0.15
        s3, _ = build_stretch3_centralized(g, eps, seed=74)
        cdg, _, _ = build_cdg_centralized(g, eps, 2, seed=74)
        assert np.mean([c.size_words() for c in cdg]) < \
            np.mean([s.size_words() for s in s3])

    def test_same_node_zero(self, er_weighted, shared):
        net, h = shared
        cs, _, _ = build_cdg_centralized(er_weighted, EPS, K, net=net,
                                         hierarchy=h)
        assert cs[5].estimate_to(cs[5]) == 0.0
